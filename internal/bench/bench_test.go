package bench_test

import (
	"fmt"
	"strings"
	"testing"

	"statefulcc/internal/bench"
	"statefulcc/internal/compiler"
	"statefulcc/internal/workload"
)

// tinySuite keeps unit-test runtime low; the real experiments use the
// standard suite via bench_test.go at the repo root and cmd/experiments.
func tinySuite() []workload.Profile {
	s := workload.StandardSuite()
	return s[:2]
}

func tinyConfig() bench.Config {
	return bench.Config{Commits: 4}
}

func TestRunHistoryShapes(t *testing.T) {
	run, err := bench.RunHistory(tinySuite()[0], compiler.ModeStateful, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if run.Cold.UnitsCompiled == 0 {
		t.Error("cold build compiled nothing")
	}
	if len(run.Incremental) != 4 {
		t.Errorf("incremental builds = %d, want 4", len(run.Incremental))
	}
	for i, s := range run.Incremental {
		if s.UnitsCompiled+s.UnitsCached != run.Cold.UnitsCompiled {
			t.Errorf("build %d: unit accounting broken: %d+%d != %d",
				i, s.UnitsCompiled, s.UnitsCached, run.Cold.UnitsCompiled)
		}
	}
	if run.MeanIncrementalNS() <= 0 {
		t.Error("mean incremental time not positive")
	}
}

func TestTable1(t *testing.T) {
	tab, err := bench.Table1Characteristics(tinySuite())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	if !strings.Contains(tab.String(), "functions") {
		t.Error("table render missing columns")
	}
	if md := tab.Markdown(); !strings.Contains(md, "| project |") {
		t.Errorf("markdown render broken:\n%s", md)
	}
}

func TestFigure1DormantFraction(t *testing.T) {
	tab, err := bench.Figure1DormantFraction(tinySuite(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		// Dormant fractions are percentages; sanity: above 30% (the paper's
		// motivation requires substantial dormancy) and at most 100%.
		for _, cell := range row[1:] {
			v := parsePct(t, cell)
			if v < 30 || v > 100 {
				t.Errorf("%s: implausible dormant fraction %s", row[0], cell)
			}
		}
	}
}

func TestFigure2Persistence(t *testing.T) {
	tab, err := bench.Figure2DormancyPersistence(tinySuite(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[1] == "n/a" {
			continue
		}
		if v := parsePct(t, row[1]); v < 50 {
			t.Errorf("%s: dormancy persistence %s too low to motivate the design", row[0], row[1])
		}
	}
}

func TestTable2EndToEnd(t *testing.T) {
	tab, err := bench.Table2EndToEnd(tinySuite(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 { // two projects + MEAN
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	if tab.Rows[len(tab.Rows)-1][0] != "MEAN" {
		t.Error("missing MEAN row")
	}
}

func TestTable4Correctness(t *testing.T) {
	tab, err := bench.Table4Correctness(tinySuite(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		for _, cell := range row[2:] {
			parts := strings.Split(cell, "/")
			if len(parts) != 2 || parts[0] != parts[1] {
				t.Errorf("%s: output equivalence failed: %s", row[0], cell)
			}
		}
	}
}

func TestTable3StateOverhead(t *testing.T) {
	tab, err := bench.Table3StateOverhead(tinySuite(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		// fullcache state must dwarf dormancy state: ratio column like "12.3x".
		ratio := strings.TrimSuffix(row[len(row)-1], "x")
		var v float64
		if _, err := sscanFloat(ratio, &v); err != nil {
			t.Fatalf("%s: bad ratio cell %q", row[0], row[len(row)-1])
		}
		if v < 2 {
			t.Errorf("%s: fullcache/state ratio %.1f — expected the dormancy state to be much smaller", row[0], v)
		}
	}
}

func TestFigure5PerPass(t *testing.T) {
	tab, err := bench.Figure5PerPassSavings(tinySuite(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no per-pass rows")
	}
	seen := map[string]bool{}
	for _, row := range tab.Rows {
		seen[row[0]] = true
	}
	if !seen["mem2reg"] || !seen["gvn"] {
		t.Errorf("expected pipeline passes in rows, got %v", seen)
	}
}

func TestFigure6Ablation(t *testing.T) {
	tab, err := bench.Figure6Ablation(tinySuite()[0], tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 policies", len(tab.Rows))
	}
	// The guarded policy reports zero mispredictions.
	for _, row := range tab.Rows {
		if row[0] == "stateful" && row[4] != "0" {
			t.Errorf("stateful mispredictions = %s, want 0", row[4])
		}
	}
}

func TestFigure3And4RunClean(t *testing.T) {
	if _, err := bench.Figure3PerFileCDF(tinySuite()[:1], tinyConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := bench.Figure4EditSize(tinySuite()[0], bench.Config{Commits: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestTable5RunsClean(t *testing.T) {
	tab, err := bench.Table5VsFullCache(tinySuite()[:1], tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || len(tab.Rows[0]) != 6 {
		t.Errorf("unexpected shape: %+v", tab.Rows)
	}
}

func TestTable6PipelineLength(t *testing.T) {
	tab, err := bench.Table6PipelineLength(tinySuite()[0], bench.Config{Commits: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 pipeline variants", len(tab.Rows))
	}
}

func TestFigure7Parallelism(t *testing.T) {
	tab, err := bench.Figure7Parallelism(tinySuite()[0], bench.Config{Commits: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 worker counts", len(tab.Rows))
	}
	if err := bench.VerifyParallelBehaviour(workload.Generate(tinySuite()[0])); err != nil {
		t.Fatal(err)
	}
}

// --- helpers ---------------------------------------------------------------

func parsePct(t *testing.T, cell string) float64 {
	t.Helper()
	var v float64
	if _, err := sscanFloat(strings.TrimSuffix(cell, "%"), &v); err != nil {
		t.Fatalf("bad percentage cell %q", cell)
	}
	return v
}

func sscanFloat(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
