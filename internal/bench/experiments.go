package bench

// The experiment implementations, one per table/figure in DESIGN.md §5.
// Each takes the project suite to run over (tests pass a small subset, the
// cmd/experiments binary passes workload.StandardSuite()) and returns a
// rendered Table.

import (
	"fmt"
	"io"
	"sort"
	"time"

	"statefulcc/internal/bitcode"
	"statefulcc/internal/compiler"
	"statefulcc/internal/core"
	"statefulcc/internal/passes"
	"statefulcc/internal/project"
	"statefulcc/internal/state"
	"statefulcc/internal/workload"
)

// projectShape summarizes a generated project.
type projectShape struct {
	units, funcs, lines, bytes int
}

func shapeOf(p workload.Profile) (projectShape, error) {
	snap := workload.Generate(p)
	sh := projectShape{units: len(snap), lines: snap.Lines(), bytes: snap.TotalBytes()}
	for _, unit := range snap.Units() {
		m, err := compiler.Frontend(unit, snap[unit])
		if err != nil {
			return sh, fmt.Errorf("%s/%s: %w", p.Name, unit, err)
		}
		sh.funcs += len(m.Funcs)
	}
	return sh, nil
}

// Table1Characteristics reproduces the benchmark-characteristics table.
func Table1Characteristics(suite []workload.Profile) (*Table, error) {
	t := &Table{
		ID:      "T1",
		Title:   "Benchmark project characteristics",
		Columns: []string{"project", "files", "functions", "lines", "KiB"},
		Notes: []string{
			"synthetic MiniC projects standing in for the paper's real-world C++ projects (DESIGN.md §6)",
		},
	}
	for _, p := range suite {
		sh, err := shapeOf(p)
		if err != nil {
			return nil, err
		}
		t.AddRow(p.Name, sh.units, sh.funcs, sh.lines, kb(sh.bytes))
	}
	return t, nil
}

// Figure1DormantFraction reproduces the motivation figure: the fraction of
// pass executions that are dormant when recompiling edited files.
func Figure1DormantFraction(suite []workload.Profile, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "F1",
		Title:   "Dormant fraction of pass executions in incremental builds",
		Columns: []string{"project", "cold-build dormant", "incremental dormant (changed files)"},
		Notes: []string{
			"paper's motivation: most pass executions do nothing, especially on incremental rebuilds",
		},
	}
	pipeline := passes.StandardPipeline
	for _, p := range suite {
		base := workload.Generate(p)
		hist := workload.GenerateHistory(base, p.Seed^cfg.Seed, cfg.Commits, cfg.CommitShape)

		var coldDorm, coldTotal float64
		for _, unit := range base.Units() {
			bm, err := collectDormancy(unit, base[unit], pipeline)
			if err != nil {
				return nil, err
			}
			coldDorm += dormantFractionOf(bm) * float64(len(bm))
			coldTotal += float64(len(bm))
		}

		var incDorm, incTotal float64
		prev := base
		for _, commit := range hist.Commits {
			for _, unit := range project.Diff(prev, commit) {
				if _, ok := commit[unit]; !ok {
					continue
				}
				bm, err := collectDormancy(unit, commit[unit], pipeline)
				if err != nil {
					return nil, err
				}
				incDorm += dormantFractionOf(bm) * float64(len(bm))
				incTotal += float64(len(bm))
			}
			prev = commit
		}
		incFrac := 0.0
		if incTotal > 0 {
			incFrac = incDorm / incTotal
		}
		t.AddRow(p.Name, pct(coldDorm/coldTotal), pct(incFrac))
	}
	return t, nil
}

// Figure2DormancyPersistence measures how reliably a dormant pass stays
// dormant across a commit touching its file.
func Figure2DormancyPersistence(suite []workload.Profile, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "F2",
		Title:   "Dormancy persistence across commits (changed files only)",
		Columns: []string{"project", "P(dormant stays dormant)", "observations"},
		Notes: []string{
			"high persistence is what makes dormancy records predictive; the fingerprint guard handles the remainder soundly",
		},
	}
	pipeline := passes.StandardPipeline
	for _, p := range suite {
		base := workload.Generate(p)
		hist := workload.GenerateHistory(base, p.Seed^cfg.Seed, cfg.Commits, cfg.CommitShape)
		var weighted float64
		var totalObs int
		prev := base
		for _, commit := range hist.Commits {
			for _, unit := range project.Diff(prev, commit) {
				prevSrc, okPrev := prev[unit]
				nextSrc, okNext := commit[unit]
				if !okPrev || !okNext {
					continue
				}
				prevBM, err := collectDormancy(unit, prevSrc, pipeline)
				if err != nil {
					return nil, err
				}
				nextBM, err := collectDormancy(unit, nextSrc, pipeline)
				if err != nil {
					return nil, err
				}
				frac, obs := persistence(prevBM, nextBM)
				weighted += frac * float64(obs)
				totalObs += obs
			}
			prev = commit
		}
		if totalObs == 0 {
			t.AddRow(p.Name, "n/a", 0)
			continue
		}
		t.AddRow(p.Name, pct(weighted/float64(totalObs)), totalObs)
	}
	return t, nil
}

// Table2EndToEnd reproduces the headline result: end-to-end incremental
// build time, stateless vs stateful, with the mean speedup the paper
// reports as 6.72%.
func Table2EndToEnd(suite []workload.Profile, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "T2",
		Title: "End-to-end incremental build time (mean per commit)",
		Columns: []string{
			"project", "stateless ms", "stateful ms", "speedup", "passes skipped/commit",
		},
		Notes: []string{
			"paper reports a 6.72% mean end-to-end speedup on Clang; shape to match: single-digit-% wins that grow with dormancy",
		},
	}
	var geoAccum float64
	var count int
	for _, p := range suite {
		runs, err := CompareHistories(p, []compiler.Mode{compiler.ModeStateless, compiler.ModeStateful}, cfg)
		if err != nil {
			return nil, err
		}
		sl := runs[compiler.ModeStateless].MeanIncrementalNS()
		sf := runs[compiler.ModeStateful].MeanIncrementalNS()
		speedup := float64(sl)/float64(sf) - 1

		var skipped int
		for _, s := range runs[compiler.ModeStateful].Incremental {
			if s.Stats != nil {
				_, _, sk := s.Stats.Totals()
				skipped += sk
			}
		}
		perCommit := float64(skipped) / float64(len(runs[compiler.ModeStateful].Incremental))
		t.AddRow(p.Name, ms(sl), ms(sf), pct(speedup), fmt.Sprintf("%.1f", perCommit))
		geoAccum += speedup
		count++
	}
	if count > 0 {
		t.AddRow("MEAN", "", "", pct(geoAccum/float64(count)), "")
	}
	return t, nil
}

// Figure3PerFileCDF reports the distribution of per-file compile-time
// speedups on recompiled units.
func Figure3PerFileCDF(suite []workload.Profile, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "F3",
		Title:   "Per-file compile-time speedup distribution (stateful vs stateless)",
		Columns: []string{"project", "P10", "P25", "P50", "P75", "P90"},
		Notes: []string{
			"per-changed-file gains exceed the end-to-end number because linking and cached files dilute the total",
		},
	}
	for _, p := range suite {
		runs, err := CompareHistories(p, []compiler.Mode{compiler.ModeStateless, compiler.ModeStateful}, cfg)
		if err != nil {
			return nil, err
		}
		var ratios []float64
		slRun, sfRun := runs[compiler.ModeStateless], runs[compiler.ModeStateful]
		for i := range sfRun.Incremental {
			if i >= len(slRun.Incremental) {
				break
			}
			for unit, sfNS := range sfRun.Incremental[i].PerUnitNS {
				if slNS, ok := slRun.Incremental[i].PerUnitNS[unit]; ok && sfNS > 0 {
					ratios = append(ratios, float64(slNS)/float64(sfNS)-1)
				}
			}
		}
		if len(ratios) == 0 {
			t.AddRow(p.Name, "n/a", "n/a", "n/a", "n/a", "n/a")
			continue
		}
		sort.Float64s(ratios)
		q := func(f float64) string { return pct(ratios[int(f*float64(len(ratios)-1))]) }
		t.AddRow(p.Name, q(0.10), q(0.25), q(0.50), q(0.75), q(0.90))
	}
	return t, nil
}

// Figure4EditSize sweeps the number of files touched per commit.
func Figure4EditSize(p workload.Profile, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "F4",
		Title:   fmt.Sprintf("Speedup vs edit size (project %s)", p.Name),
		Columns: []string{"files touched/commit", "stateless ms", "stateful ms", "speedup"},
		Notes: []string{
			"larger edits recompile more files, giving the stateful compiler more dormant passes to skip per build — until edits start invalidating the records themselves",
		},
	}
	for _, units := range []int{1, 2, 4, 8} {
		c := cfg
		c.CommitShape = workload.CommitOptions{Units: units, EditsPerUnit: cfg.CommitShape.EditsPerUnit}
		runs, err := CompareHistories(p, []compiler.Mode{compiler.ModeStateless, compiler.ModeStateful}, c)
		if err != nil {
			return nil, err
		}
		sl := runs[compiler.ModeStateless].MeanIncrementalNS()
		sf := runs[compiler.ModeStateful].MeanIncrementalNS()
		t.AddRow(units, ms(sl), ms(sf), pct(float64(sl)/float64(sf)-1))
	}
	return t, nil
}

// Table3StateOverhead reports the dormancy-state footprint and store I/O
// cost, against the full-IR cache comparator.
func Table3StateOverhead(suite []workload.Profile, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "T3",
		Title: "Compiler state overhead after the edit history",
		Columns: []string{
			"project", "functions", "state KiB", "bytes/function", "save+load µs", "fullcache KiB", "ratio",
		},
		Notes: []string{
			"dormancy state scales with pipeline length, full-IR caching with code size: the gap here (small synthetic functions) widens by orders of magnitude on real C++ function sizes",
		},
	}
	for _, p := range suite {
		sh, err := shapeOf(p)
		if err != nil {
			return nil, err
		}
		sfRun, err := RunHistory(p, compiler.ModeStateful, cfg)
		if err != nil {
			return nil, err
		}
		fcRun, err := RunHistory(p, compiler.ModeFullCache, cfg)
		if err != nil {
			return nil, err
		}
		sfBytes := lastStateBytes(sfRun)
		fcBytes := lastStateBytes(fcRun)

		// Measure save+load on a representative unit state.
		ioUS := measureStateIO(p)

		ratio := "n/a"
		if sfBytes > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(fcBytes)/float64(sfBytes))
		}
		t.AddRow(p.Name, sh.funcs, kb(sfBytes), fmt.Sprintf("%.1f", float64(sfBytes)/float64(max(1, sh.funcs))),
			fmt.Sprintf("%.1f", ioUS), kb(fcBytes), ratio)
	}
	return t, nil
}

func lastStateBytes(r *ProjectRun) int {
	if len(r.Incremental) > 0 {
		return r.Incremental[len(r.Incremental)-1].StateBytes
	}
	return r.Cold.StateBytes
}

// measureStateIO times one save+load cycle of a unit's dormancy state.
func measureStateIO(p workload.Profile) float64 {
	snap := workload.Generate(p)
	units := snap.Units()
	d, err := core.NewDriver(core.Options{Policy: core.Stateful})
	if err != nil {
		return 0
	}
	m, err := compiler.Frontend(units[0], snap[units[0]])
	if err != nil {
		return 0
	}
	st, _, err := d.Run(m, nil)
	if err != nil {
		return 0
	}
	var buf sliceBuffer
	start := time.Now()
	const iters = 16
	for i := 0; i < iters; i++ {
		buf.b = buf.b[:0]
		buf.r = 0
		if err := state.Encode(&buf, st); err != nil {
			return 0
		}
		if _, err := state.Decode(&buf); err != nil {
			return 0
		}
	}
	return float64(time.Since(start).Microseconds()) / iters
}

type sliceBuffer struct {
	b []byte
	r int
}

func (s *sliceBuffer) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

func (s *sliceBuffer) Read(p []byte) (int, error) {
	if s.r >= len(s.b) {
		return 0, io.EOF
	}
	n := copy(p, s.b[s.r:])
	s.r += n
	return n, nil
}

// Table4Correctness executes every built program under every policy and
// checks output equivalence build by build.
func Table4Correctness(suite []workload.Profile, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	cfg.RunPrograms = true
	t := &Table{
		ID:      "T4",
		Title:   "Output equivalence across policies (per-build program behaviour)",
		Columns: []string{"project", "builds", "stateful==stateless", "fullcache==stateless"},
		Notes: []string{
			"every simulated commit's program is executed under each policy and outputs compared",
		},
	}
	for _, p := range suite {
		runs, err := CompareHistories(p,
			[]compiler.Mode{compiler.ModeStateless, compiler.ModeStateful, compiler.ModeFullCache}, cfg)
		if err != nil {
			return nil, err
		}
		base := runs[compiler.ModeStateless]
		check := func(other *ProjectRun) string {
			n, match := 0, 0
			pairs := append([]BuildSample{base.Cold}, base.Incremental...)
			otherPairs := append([]BuildSample{other.Cold}, other.Incremental...)
			for i := range pairs {
				if i >= len(otherPairs) {
					break
				}
				n++
				if pairs[i].Output == otherPairs[i].Output && pairs[i].Exit == otherPairs[i].Exit {
					match++
				}
			}
			return fmt.Sprintf("%d/%d", match, n)
		}
		t.AddRow(p.Name, len(base.Incremental)+1,
			check(runs[compiler.ModeStateful]), check(runs[compiler.ModeFullCache]))
	}
	return t, nil
}

// Figure5PerPassSavings attributes skipped time to passes.
func Figure5PerPassSavings(suite []workload.Profile, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "F5",
		Title:   "Per-pass skipping profile (aggregated over incremental builds)",
		Columns: []string{"pass", "skipped", "runs", "dormant runs", "est. saved ms"},
		Notes: []string{
			"which pipeline stages pay for statefulness: cleanup passes re-run after enabling passes dominate",
		},
	}
	agg := &core.Stats{}
	for _, p := range suite {
		run, err := RunHistory(p, compiler.ModeStateful, cfg)
		if err != nil {
			return nil, err
		}
		for _, s := range run.Incremental {
			if s.Stats != nil {
				agg.Merge(s.Stats)
			}
		}
	}
	byPass := agg.ByPass()
	names := make([]string, 0, len(byPass))
	for name := range byPass {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return byPass[names[i]].SavedNS > byPass[names[j]].SavedNS })
	for _, name := range names {
		s := byPass[name]
		t.AddRow(s.Pass, s.Skipped, s.Runs, s.Dormant, ms(s.SavedNS))
	}
	return t, nil
}

// Table5VsFullCache compares the stateful compiler against the full-IR
// caching comparator on both time and state size.
func Table5VsFullCache(suite []workload.Profile, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "T5",
		Title: "Stateful (dormancy records) vs full-IR function caching",
		Columns: []string{
			"project", "stateless ms", "stateful ms", "fullcache ms", "stateful KiB", "fullcache KiB",
		},
		Notes: []string{
			"full caching wins more time on cache hits but pays orders of magnitude more state; the paper argues the dormancy point is the better trade for a compiler default",
		},
	}
	for _, p := range suite {
		runs, err := CompareHistories(p,
			[]compiler.Mode{compiler.ModeStateless, compiler.ModeStateful, compiler.ModeFullCache}, cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(p.Name,
			ms(runs[compiler.ModeStateless].MeanIncrementalNS()),
			ms(runs[compiler.ModeStateful].MeanIncrementalNS()),
			ms(runs[compiler.ModeFullCache].MeanIncrementalNS()),
			kb(lastStateBytes(runs[compiler.ModeStateful])),
			kb(lastStateBytes(runs[compiler.ModeFullCache])))
	}
	return t, nil
}

// Figure6Ablation compares skip policies and quantifies cold-build
// recording overhead and the predictive policy's misprediction rate.
func Figure6Ablation(p workload.Profile, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "F6",
		Title:   fmt.Sprintf("Skip-policy ablation (project %s)", p.Name),
		Columns: []string{"policy", "cold ms", "incremental ms", "skipped/commit", "mispredictions"},
		Notes: []string{
			"predictive (no fingerprint guard) skips slightly more but mispredicts; guarded skipping never does",
			"cold-build delta over stateless is the recording overhead",
		},
	}
	for _, mode := range []compiler.Mode{compiler.ModeStateless, compiler.ModeStateful, compiler.ModePredictive} {
		run, err := RunHistory(p, mode, cfg)
		if err != nil {
			return nil, err
		}
		var skipped int
		for _, s := range run.Incremental {
			if s.Stats != nil {
				_, _, sk := s.Stats.Totals()
				skipped += sk
			}
		}
		mis := "0"
		if mode == compiler.ModePredictive {
			n, err := countMispredictions(p, cfg)
			if err != nil {
				return nil, err
			}
			mis = fmt.Sprint(n)
		} else if mode == compiler.ModeStateless {
			mis = "n/a"
		}
		t.AddRow(mode.String(), ms(run.Cold.TotalNS), ms(run.MeanIncrementalNS()),
			fmt.Sprintf("%.1f", float64(skipped)/float64(max(1, len(run.Incremental)))), mis)
	}
	return t, nil
}

// countMispredictions replays the history under the predictive policy with
// skip verification, counting wrong skips.
func countMispredictions(p workload.Profile, cfg Config) (int, error) {
	cfg = cfg.withDefaults()
	base := workload.Generate(p)
	hist := workload.GenerateHistory(base, p.Seed^cfg.Seed, cfg.Commits, cfg.CommitShape)

	d, err := core.NewDriver(core.Options{Policy: core.Predictive, VerifySkips: true})
	if err != nil {
		return 0, err
	}
	states := map[string]*core.UnitState{}
	total := 0
	prev := project.Snapshot(nil)
	for _, snap := range append([]project.Snapshot{base}, hist.Commits...) {
		for _, unit := range snap.Units() {
			if prev != nil {
				if old, ok := prev[unit]; ok && string(old) == string(snap[unit]) {
					continue // file-level cache hit; compiler not invoked
				}
			}
			m, err := compiler.Frontend(unit, snap[unit])
			if err != nil {
				return 0, err
			}
			st, stats, err := d.Run(m, states[unit])
			if err != nil {
				return 0, err
			}
			states[unit] = st
			for _, sl := range stats.Slots {
				total += sl.Mispredicted
			}
		}
		prev = snap
	}
	return total, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ModuleIRSize is a helper surfaced for the statedump tool: the bitcode
// footprint of a compiled unit, for comparing against dormancy state.
func ModuleIRSize(unit string, src []byte) (int, error) {
	m, err := compiler.Frontend(unit, src)
	if err != nil {
		return 0, err
	}
	if _, err := passes.RunPipeline(m, passes.StandardPipeline); err != nil {
		return 0, err
	}
	return bitcode.SizeOfModule(m), nil
}
