package bench

// Extension experiment: how does the stateful win scale with pipeline
// length? The skippable work grows with the number of pass slots while the
// per-function hashing cost stays constant, so longer pipelines — real
// compilers run far more than 22 pass instances — benefit more. This is
// the axis along which the reproduction's numbers understate a Clang-scale
// deployment.

import (
	"fmt"

	"statefulcc/internal/buildsys"
	"statefulcc/internal/compiler"
	"statefulcc/internal/passes"
	"statefulcc/internal/project"
	"statefulcc/internal/workload"
)

// pipelineVariant is one pipeline-length configuration.
type pipelineVariant struct {
	name     string
	pipeline []string
}

func pipelineVariants() []pipelineVariant {
	std := passes.StandardPipeline
	// A "long" pipeline: the standard one with its cleanup segment run
	// twice more — representative of -O3-ish pipelines where repeated
	// cleanup rounds are mostly dormant.
	long := append([]string(nil), std...)
	cleanup := []string{"instcombine", "sccp", "gvn", "loadelim", "dse", "dce", "simplifycfg"}
	long = append(long, cleanup...)
	long = append(long, cleanup...)
	return []pipelineVariant{
		{"quick (6 slots)", passes.QuickPipeline},
		{fmt.Sprintf("standard (%d slots)", len(std)), std},
		{fmt.Sprintf("long (%d slots)", len(long)), long},
	}
}

// Table6PipelineLength compares stateless vs stateful incremental build
// time under pipelines of increasing length.
func Table6PipelineLength(p workload.Profile, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "T6",
		Title:   fmt.Sprintf("EXTENSION: speedup vs pipeline length (project %s)", p.Name),
		Columns: []string{"pipeline", "stateless incr ms", "stateful incr ms", "speedup"},
		Notes: []string{
			"extension beyond the paper: skippable work grows with pipeline length while hashing cost is constant — real compilers run hundreds of pass instances",
		},
	}
	base := workload.Generate(p)
	hist := workload.GenerateHistory(base, p.Seed^cfg.Seed, cfg.Commits, cfg.CommitShape)
	snapshots := append([]project.Snapshot{base}, hist.Commits...)

	for _, variant := range pipelineVariants() {
		var mean [2]int64
		for mi, mode := range []compiler.Mode{compiler.ModeStateless, compiler.ModeStateful} {
			best := int64(1) << 62
			for r := 0; r < cfg.Repeats; r++ {
				b, err := buildsys.NewBuilder(buildsys.Options{Mode: mode, Pipeline: variant.pipeline})
				if err != nil {
					return nil, err
				}
				var incr int64
				for i, snap := range snapshots {
					rep, err := b.Build(snap)
					if err != nil {
						return nil, fmt.Errorf("%s/%s: %w", variant.name, mode, err)
					}
					if i > 0 {
						incr += rep.TotalNS
					}
				}
				incr /= int64(len(snapshots) - 1)
				if incr < best {
					best = incr
				}
			}
			mean[mi] = best
		}
		t.AddRow(variant.name, ms(mean[0]), ms(mean[1]),
			pct(float64(mean[0])/float64(mean[1])-1))
	}
	return t, nil
}
