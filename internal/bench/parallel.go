package bench

// Extension experiment (not in the paper): does the stateful win survive
// `make -j` style parallel builds? Dormancy skipping reduces *work*, not
// just wall time, so it should compose with parallelism until link time
// and the critical-path unit dominate.

import (
	"fmt"

	"statefulcc/internal/buildsys"
	"statefulcc/internal/compiler"
	"statefulcc/internal/project"
	"statefulcc/internal/vm"
	"statefulcc/internal/workload"
)

// Figure7Parallelism sweeps worker counts for stateless and stateful
// builds over one project's history.
func Figure7Parallelism(p workload.Profile, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "F7",
		Title:   fmt.Sprintf("EXTENSION: stateful × parallel builds (project %s)", p.Name),
		Columns: []string{"workers", "stateless cold ms", "stateful cold ms", "stateless incr ms", "stateful incr ms", "incr speedup"},
		Notes: []string{
			"extension beyond the paper: dormancy skipping removes work, so the benefit composes with -j parallelism",
		},
	}
	base := workload.Generate(p)
	hist := workload.GenerateHistory(base, p.Seed^cfg.Seed, cfg.Commits, cfg.CommitShape)
	snapshots := append([]project.Snapshot{base}, hist.Commits...)

	for _, workers := range []int{1, 2, 4, 8} {
		var coldNS [2]int64
		var incrNS [2]int64
		for mi, mode := range []compiler.Mode{compiler.ModeStateless, compiler.ModeStateful} {
			best := func() ([2]int64, error) {
				b, err := buildsys.NewBuilder(buildsys.Options{Mode: mode, Workers: workers})
				if err != nil {
					return [2]int64{}, err
				}
				var cold, incr int64
				for i, snap := range snapshots {
					rep, err := b.Build(snap)
					if err != nil {
						return [2]int64{}, err
					}
					if i == 0 {
						cold = rep.TotalNS
					} else {
						incr += rep.TotalNS
					}
					// Touch the program so dead-code elimination of the
					// build cannot fool the measurement.
					if rep.Program == nil {
						return [2]int64{}, fmt.Errorf("no program")
					}
				}
				return [2]int64{cold, incr / int64(len(snapshots)-1)}, nil
			}
			res := [2]int64{1 << 62, 1 << 62}
			for r := 0; r < cfg.Repeats; r++ {
				got, err := best()
				if err != nil {
					return nil, err
				}
				if got[0] < res[0] {
					res[0] = got[0]
				}
				if got[1] < res[1] {
					res[1] = got[1]
				}
			}
			coldNS[mi], incrNS[mi] = res[0], res[1]
		}
		t.AddRow(workers, ms(coldNS[0]), ms(coldNS[1]), ms(incrNS[0]), ms(incrNS[1]),
			pct(float64(incrNS[0])/float64(incrNS[1])-1))
	}
	return t, nil
}

// VerifyParallelBehaviour is used by tests: a parallel stateful build of
// the given snapshot must behave like a serial stateless one.
func VerifyParallelBehaviour(snap project.Snapshot) error {
	serial, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateless})
	if err != nil {
		return err
	}
	par, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateful, Workers: 4})
	if err != nil {
		return err
	}
	r1, err := serial.Build(snap)
	if err != nil {
		return err
	}
	r2, err := par.Build(snap)
	if err != nil {
		return err
	}
	o1, res1, err := vm.RunCapture(r1.Program, vm.Config{})
	if err != nil {
		return err
	}
	o2, res2, err := vm.RunCapture(r2.Program, vm.Config{})
	if err != nil {
		return err
	}
	if o1 != o2 || res1.ExitValue != res2.ExitValue {
		return fmt.Errorf("parallel stateful build diverged")
	}
	return nil
}
