package bench

// The multi-core latency matrix: the hot-path evidence artifact behind
// docs/PERFORMANCE.md. A workers × profile grid of incremental build
// latency distributions (p50/p99, not just means — tail latency is where
// contention shows), skip rates, fingerprint cost, and allocation churn,
// plus side-by-side microcomparisons of the old and new fingerprint
// algorithms and state layouts. `benchbaseline -matrix` renders the whole
// thing as BENCH_pr6.json.

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"time"

	"statefulcc/internal/buildsys"
	"statefulcc/internal/compiler"
	"statefulcc/internal/core"
	"statefulcc/internal/fingerprint"
	"statefulcc/internal/obs"
	"statefulcc/internal/project"
	"statefulcc/internal/state"
	"statefulcc/internal/workload"
)

// MatrixCell is one (profile, workers) measurement over a full simulated
// edit history in stateful mode.
type MatrixCell struct {
	Profile string `json:"profile"`
	Files   int    `json:"files"`
	Workers int    `json:"workers"`

	ColdMS float64 `json:"cold_ms"`
	// Incremental wall-time distribution over the history's commits (each
	// commit keeps its minimum across repeats before the percentiles are
	// taken, the standard wall-clock noise reduction).
	P50IncrementalMS  float64 `json:"p50_incremental_ms"`
	P99IncrementalMS  float64 `json:"p99_incremental_ms"`
	MeanIncrementalMS float64 `json:"mean_incremental_ms"`

	SkipRatePct float64 `json:"skip_rate_pct"`

	// Fingerprint accounting for the whole history: total hashing time
	// (minimum across repeats, like the wall times — the counts are
	// deterministic but the nanoseconds are not), hash count, and the
	// hierarchical memo's hit/miss split.
	HashNS         int64   `json:"fingerprint_hash_ns"`
	Hashes         int64   `json:"fingerprint_hashes"`
	BlocksMemoized int64   `json:"blocks_memoized"`
	BlocksRehashed int64   `json:"blocks_rehashed"`
	MemoHitPct     float64 `json:"memo_hit_pct"`

	// Allocation churn per build (heap Mallocs delta across the history's
	// builds, first repeat, divided by the build count). Includes frontend
	// and codegen work, so it bounds — not isolates — fingerprint churn;
	// the FingerprintCompare microbenchmark isolates it.
	AllocsPerBuild float64 `json:"allocs_per_build"`
}

// MatrixOptions bounds a matrix run.
type MatrixOptions struct {
	// Profiles to sweep (default: the three smallest standard-suite ones).
	Profiles []workload.Profile
	// Workers is the worker-count axis (default 1, 4, 16).
	Workers []int
	// Commits / Repeats / Seed mirror Config.
	Commits int
	Repeats int
	Seed    int64
}

func (o MatrixOptions) withDefaults() MatrixOptions {
	if len(o.Profiles) == 0 {
		o.Profiles = workload.StandardSuite()[:3]
	}
	if len(o.Workers) == 0 {
		o.Workers = []int{1, 4, 16}
	}
	if o.Commits == 0 {
		o.Commits = 12
	}
	if o.Repeats == 0 {
		o.Repeats = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// RunMatrix sweeps the workers × profiles grid.
func RunMatrix(opts MatrixOptions) ([]MatrixCell, error) {
	opts = opts.withDefaults()
	var cells []MatrixCell
	for _, p := range opts.Profiles {
		base := workload.Generate(p)
		hist := workload.GenerateHistory(base, p.Seed^opts.Seed, opts.Commits, workload.DefaultCommitOptions())
		snapshots := append([]project.Snapshot{base}, hist.Commits...)
		for _, workers := range opts.Workers {
			cell, err := runMatrixCell(p, workers, snapshots, opts.Repeats)
			if err != nil {
				return nil, fmt.Errorf("%s × %d workers: %w", p.Name, workers, err)
			}
			cells = append(cells, *cell)
		}
	}
	return cells, nil
}

func runMatrixCell(p workload.Profile, workers int, snapshots []project.Snapshot, repeats int) (*MatrixCell, error) {
	cell := &MatrixCell{Profile: p.Name, Files: p.Files, Workers: workers}
	// Per-commit minimum across repeats, then percentiles over commits.
	incrNS := make([]int64, len(snapshots)-1)
	var coldNS int64
	for rep := 0; rep < repeats; rep++ {
		b, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateful, Workers: workers})
		if err != nil {
			return nil, err
		}
		var m0, m1 runtime.MemStats
		if rep == 0 {
			runtime.ReadMemStats(&m0)
		}
		for i, snap := range snapshots {
			rep2, err := b.Build(snap)
			if err != nil {
				return nil, err
			}
			switch {
			case i == 0 && (rep == 0 || rep2.TotalNS < coldNS):
				coldNS = rep2.TotalNS
			case i > 0 && (rep == 0 || rep2.TotalNS < incrNS[i-1]):
				incrNS[i-1] = rep2.TotalNS
			}
		}
		m := b.Metrics()
		if rep == 0 {
			runtime.ReadMemStats(&m1)
			cell.AllocsPerBuild = float64(m1.Mallocs-m0.Mallocs) / float64(len(snapshots))
			cell.SkipRatePct = 100 * obs.SkipRate(m)
			cell.Hashes = m[obs.CtrHashes]
			cell.BlocksMemoized = m[obs.CtrBlocksMemoized]
			cell.BlocksRehashed = m[obs.CtrBlocksRehashed]
			if tot := cell.BlocksMemoized + cell.BlocksRehashed; tot > 0 {
				cell.MemoHitPct = 100 * float64(cell.BlocksMemoized) / float64(tot)
			}
		}
		if hns := m[obs.CtrHashNS]; rep == 0 || hns < cell.HashNS {
			cell.HashNS = hns
		}
	}
	cell.ColdMS = float64(coldNS) / 1e6
	cell.MeanIncrementalMS = float64(meanNS(incrNS)) / 1e6
	cell.P50IncrementalMS = float64(percentileNS(incrNS, 50)) / 1e6
	cell.P99IncrementalMS = float64(percentileNS(incrNS, 99)) / 1e6
	return cell, nil
}

func meanNS(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	var sum int64
	for _, x := range xs {
		sum += x
	}
	return sum / int64(len(xs))
}

// percentileNS is the nearest-rank percentile of xs.
func percentileNS(xs []int64, pct int) int64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (pct*len(s) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(s) {
		idx = len(s)
	}
	return s[idx-1]
}

// FingerprintCompare prices the hierarchical fingerprint against the old
// flat algorithm on one profile's largest unit, in the regime the memo is
// built for: repeated fingerprinting of unchanged IR (exactly what the
// driver does between pipeline slots that leave a function alone).
type FingerprintCompare struct {
	Profile string `json:"profile"`
	Funcs   int    `json:"funcs"`
	Blocks  int    `json:"blocks"`
	// Per-module fingerprinting cost: the retired flat walk, the
	// hierarchical walk with a cold memo (first sight of the module), and
	// the hierarchical walk with a warm memo (unchanged IR — every block
	// hash served from the memo).
	LegacyNSPerModule   int64 `json:"legacy_ns_per_module"`
	ColdMemoNSPerModule int64 `json:"cold_memo_ns_per_module"`
	WarmMemoNSPerModule int64 `json:"warm_memo_ns_per_module"`
	// Heap allocations per warm-memo module fingerprint (the hot path; the
	// pooled scratch should keep this at ~0).
	WarmAllocsPerModule float64 `json:"warm_allocs_per_module"`
	SpeedupWarmVsLegacy float64 `json:"speedup_warm_vs_legacy"`
}

// CompareFingerprints measures one profile's generated unit 0.
func CompareFingerprints(p workload.Profile) (*FingerprintCompare, error) {
	snap := workload.Generate(p)
	units := snap.Units()
	m, err := compiler.Frontend(units[0], snap[units[0]])
	if err != nil {
		return nil, err
	}
	fc := &FingerprintCompare{Profile: p.Name, Funcs: len(m.Funcs)}
	for _, f := range m.Funcs {
		fc.Blocks += len(f.Blocks)
	}

	// Best-of-rounds on every timing: a single GC pause mid-sample would
	// otherwise poison a published number.
	const iters, rounds = 64, 3
	minRound := func(body func()) int64 {
		best := int64(0)
		for r := 0; r < rounds; r++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				body()
			}
			if ns := time.Since(start).Nanoseconds() / iters; r == 0 || ns < best {
				best = ns
			}
		}
		return best
	}

	fc.LegacyNSPerModule = minRound(func() {
		for _, f := range m.Funcs {
			fingerprint.LegacyFunction(f)
		}
	})

	memo := fingerprint.NewMemo()
	fc.ColdMemoNSPerModule = minRound(func() {
		memo.Reset() // cold: every block rehashes
		for _, f := range m.Funcs {
			fingerprint.FunctionWith(f, memo)
		}
	})

	memo.Reset()
	for _, f := range m.Funcs {
		fingerprint.FunctionWith(f, memo) // warm the memo once
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	fc.WarmMemoNSPerModule = minRound(func() {
		for _, f := range m.Funcs {
			fingerprint.FunctionWith(f, memo)
		}
	})
	runtime.ReadMemStats(&m1)
	fc.WarmAllocsPerModule = float64(m1.Mallocs-m0.Mallocs) / (iters * rounds)
	if fc.WarmMemoNSPerModule > 0 {
		fc.SpeedupWarmVsLegacy = float64(fc.LegacyNSPerModule) / float64(fc.WarmMemoNSPerModule)
	}
	return fc, nil
}

// StateCompare prices the v5 zero-copy state layout against the v4
// streaming layout on a real dormancy state produced by compiling one
// profile's unit.
type StateCompare struct {
	Profile string `json:"profile"`
	V4Bytes int    `json:"v4_bytes"`
	V5Bytes int    `json:"v5_bytes"`
	// Encode/decode cost per round trip.
	V4EncodeNS int64 `json:"v4_encode_ns"`
	V5EncodeNS int64 `json:"v5_encode_ns"`
	V4DecodeNS int64 `json:"v4_decode_ns"`
	V5DecodeNS int64 `json:"v5_decode_ns"`
	// Heap allocations per decode (the v5 path slices one buffer instead
	// of copying strings, so it should allocate measurably less).
	V4DecodeAllocs float64 `json:"v4_decode_allocs"`
	V5DecodeAllocs float64 `json:"v5_decode_allocs"`
}

// CompareStateFormats measures one profile's generated unit 0.
func CompareStateFormats(p workload.Profile) (*StateCompare, error) {
	snap := workload.Generate(p)
	units := snap.Units()
	d, err := core.NewDriver(core.Options{Policy: core.Stateful})
	if err != nil {
		return nil, err
	}
	m, err := compiler.Frontend(units[0], snap[units[0]])
	if err != nil {
		return nil, err
	}
	st, _, err := d.Run(m, nil)
	if err != nil {
		return nil, err
	}

	sc := &StateCompare{Profile: p.Name}
	var v4, v5 bytes.Buffer
	if err := state.EncodeV4(&v4, st); err != nil {
		return nil, err
	}
	if err := state.Encode(&v5, st); err != nil {
		return nil, err
	}
	sc.V4Bytes, sc.V5Bytes = v4.Len(), v5.Len()

	// Best-of-rounds, for the same reason as CompareFingerprints.
	const iters, rounds = 128, 3
	minRound := func(body func() error) (int64, error) {
		best := int64(0)
		for r := 0; r < rounds; r++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				if err := body(); err != nil {
					return 0, err
				}
			}
			if ns := time.Since(start).Nanoseconds() / iters; r == 0 || ns < best {
				best = ns
			}
		}
		return best, nil
	}

	var buf bytes.Buffer
	if sc.V4EncodeNS, err = minRound(func() error {
		buf.Reset()
		return state.EncodeV4(&buf, st)
	}); err != nil {
		return nil, err
	}
	if sc.V5EncodeNS, err = minRound(func() error {
		buf.Reset()
		return state.Encode(&buf, st)
	}); err != nil {
		return nil, err
	}

	decode := func(data []byte) (int64, float64, error) {
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		ns, err := minRound(func() error {
			_, derr := state.DecodeBytes(data)
			return derr
		})
		if err != nil {
			return 0, 0, err
		}
		runtime.ReadMemStats(&m1)
		return ns, float64(m1.Mallocs-m0.Mallocs) / (iters * rounds), nil
	}
	if sc.V4DecodeNS, sc.V4DecodeAllocs, err = decode(v4.Bytes()); err != nil {
		return nil, err
	}
	if sc.V5DecodeNS, sc.V5DecodeAllocs, err = decode(v5.Bytes()); err != nil {
		return nil, err
	}
	return sc, nil
}
