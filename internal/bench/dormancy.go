package bench

// Dormancy tracking for the motivation experiments: per-(function, slot)
// dormancy bitmaps collected by running the pipeline pass-by-pass, used to
// measure how dormancy persists across incremental builds (Figure F2).

import (
	"fmt"

	"statefulcc/internal/compiler"
	"statefulcc/internal/ir"
	"statefulcc/internal/passes"
)

// dormKey identifies one pass execution site.
type dormKey struct {
	fn   string
	slot int
}

// dormancyBitmap maps execution sites to "was dormant".
type dormancyBitmap map[dormKey]bool

// collectDormancy compiles one unit stateless, recording dormancy per
// (function, slot). Module passes are keyed under the pseudo-function "".
func collectDormancy(unit string, src []byte, pipeline []string) (dormancyBitmap, error) {
	m, err := compiler.Frontend(unit, src)
	if err != nil {
		return nil, err
	}
	bm := make(dormancyBitmap)
	for slot, name := range pipeline {
		info, ok := passes.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("unknown pass %s", name)
		}
		if info.Module {
			p := info.New().(passes.ModulePass)
			bm[dormKey{"", slot}] = !p.RunModule(m)
			continue
		}
		p := info.New().(passes.FuncPass)
		for _, f := range append([]*ir.Func(nil), m.Funcs...) {
			bm[dormKey{f.Name, slot}] = !p.Run(f)
		}
	}
	return bm, nil
}

// dormantFractionOf computes the dormant share of a bitmap.
func dormantFractionOf(bm dormancyBitmap) float64 {
	if len(bm) == 0 {
		return 0
	}
	d := 0
	for _, dormant := range bm {
		if dormant {
			d++
		}
	}
	return float64(d) / float64(len(bm))
}

// persistence computes P(dormant in next | dormant in prev) over sites
// present in both bitmaps.
func persistence(prev, next dormancyBitmap) (float64, int) {
	dormantPrev, stayed := 0, 0
	for k, d := range prev {
		if !d {
			continue
		}
		nd, ok := next[k]
		if !ok {
			continue
		}
		dormantPrev++
		if nd {
			stayed++
		}
	}
	if dormantPrev == 0 {
		return 1, 0
	}
	return float64(stayed) / float64(dormantPrev), dormantPrev
}
