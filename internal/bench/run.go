package bench

// History runners: build a project's commit sequence under a policy and
// collect per-build measurements. All experiments are assembled from these
// samples.

import (
	"fmt"

	"statefulcc/internal/buildsys"
	"statefulcc/internal/compiler"
	"statefulcc/internal/core"
	"statefulcc/internal/obs"
	"statefulcc/internal/project"
	"statefulcc/internal/vm"
	"statefulcc/internal/workload"
)

// Config bounds an experiment run.
type Config struct {
	// Commits is the length of each simulated edit history (default 20).
	Commits int
	// CommitShape is the per-commit edit size (default workload default).
	CommitShape workload.CommitOptions
	// Repeats re-runs timing-sensitive experiments and keeps the minimum
	// (default 1; the harness favours medians over repeats for speed).
	Repeats int
	// Seed offsets history generation (default 1).
	Seed int64
	// RunPrograms executes each built program (correctness experiments).
	RunPrograms bool
	// AuditRate forwards to buildsys.Options: the soundness sentinel's
	// sampling probability (0 disables). Used to measure the sentinel's
	// overhead against an unaudited run of the same history.
	AuditRate float64
	// Footprint / EnforceFootprint forward to buildsys.Options: dependency-
	// footprint tracing and the always-correct mode. Used to price the
	// tracing cross-check against an untraced run of the same history.
	Footprint        bool
	EnforceFootprint bool
}

func (c Config) withDefaults() Config {
	if c.Commits == 0 {
		c.Commits = 20
	}
	if c.CommitShape.Units == 0 {
		c.CommitShape = workload.DefaultCommitOptions()
	}
	if c.Repeats == 0 {
		c.Repeats = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// BuildSample measures one build.
type BuildSample struct {
	// TotalNS is the end-to-end build wall time.
	TotalNS int64
	// CompileNS / LinkNS split it.
	CompileNS, LinkNS int64
	// UnitsCompiled / UnitsCached partition the units.
	UnitsCompiled, UnitsCached int
	// PerUnitNS maps each recompiled unit to its compile time.
	PerUnitNS map[string]int64
	// Stats aggregates pipeline statistics (nil for fullcache).
	Stats *core.Stats
	// StateBytes is the persistent-state footprint after this build.
	StateBytes int
	// Output/Exit capture program behaviour when RunPrograms is set.
	Output string
	Exit   int64
}

// ProjectRun is one project × policy history.
type ProjectRun struct {
	Profile workload.Profile
	Mode    compiler.Mode
	// Cold is build 0 (everything compiles).
	Cold BuildSample
	// Incremental holds builds 1..N (one per commit).
	Incremental []BuildSample
	// Metrics is the builder's counters registry after the whole history
	// (first repeat): cumulative dormancy, fingerprint, and stage totals.
	Metrics map[string]int64
	// Histograms is the builder's latency-histogram snapshot after the
	// whole history (first repeat): per-unit compile latency, skip-decision
	// latency, and build wall time distributions.
	Histograms map[string]obs.HistogramSnapshot
}

// MeanIncrementalNS averages incremental build times.
func (r *ProjectRun) MeanIncrementalNS() int64 {
	if len(r.Incremental) == 0 {
		return 0
	}
	var sum int64
	for _, s := range r.Incremental {
		sum += s.TotalNS
	}
	return sum / int64(len(r.Incremental))
}

// RunHistory executes the full history for one project under one policy.
// The same seed produces the same snapshots and edits for every policy, so
// cross-policy comparisons see identical workloads. With Repeats > 1 the
// whole history is replayed on fresh builders and each build keeps its
// minimum observed wall time (standard noise reduction for wall-clock
// benchmarking); non-timing fields come from the first repeat.
func RunHistory(p workload.Profile, mode compiler.Mode, cfg Config) (*ProjectRun, error) {
	cfg = cfg.withDefaults()
	base := workload.Generate(p)
	hist := workload.GenerateHistory(base, p.Seed^cfg.Seed, cfg.Commits, cfg.CommitShape)
	snapshots := append([]project.Snapshot{base}, hist.Commits...)

	var run *ProjectRun
	for rep := 0; rep < cfg.Repeats; rep++ {
		builder, err := buildsys.NewBuilder(buildsys.Options{
			Mode: mode, AuditRate: cfg.AuditRate,
			Footprint: cfg.Footprint, EnforceFootprint: cfg.EnforceFootprint,
		})
		if err != nil {
			return nil, err
		}
		cur := &ProjectRun{Profile: p, Mode: mode}
		for i, snap := range snapshots {
			sample, err := buildOnce(builder, snap, cfg.RunPrograms && rep == 0)
			if err != nil {
				return nil, fmt.Errorf("%s/%s build %d: %w", p.Name, mode, i, err)
			}
			if i == 0 {
				cur.Cold = *sample
			} else {
				cur.Incremental = append(cur.Incremental, *sample)
			}
		}
		if run == nil {
			run = cur
			run.Metrics = builder.Metrics()
			run.Histograms = builder.Histograms()
			continue
		}
		// Keep per-build minimum times.
		if cur.Cold.TotalNS < run.Cold.TotalNS {
			run.Cold.TotalNS = cur.Cold.TotalNS
			run.Cold.CompileNS = cur.Cold.CompileNS
			run.Cold.LinkNS = cur.Cold.LinkNS
		}
		for i := range run.Incremental {
			if i >= len(cur.Incremental) {
				break
			}
			if cur.Incremental[i].TotalNS < run.Incremental[i].TotalNS {
				run.Incremental[i].TotalNS = cur.Incremental[i].TotalNS
				run.Incremental[i].CompileNS = cur.Incremental[i].CompileNS
				run.Incremental[i].LinkNS = cur.Incremental[i].LinkNS
				for unit, ns := range cur.Incremental[i].PerUnitNS {
					if old, ok := run.Incremental[i].PerUnitNS[unit]; !ok || ns < old {
						run.Incremental[i].PerUnitNS[unit] = ns
					}
				}
			}
		}
	}
	return run, nil
}

func buildOnce(b *buildsys.Builder, snap project.Snapshot, exec bool) (*BuildSample, error) {
	rep, err := b.Build(snap)
	if err != nil {
		return nil, err
	}
	s := &BuildSample{
		TotalNS:       rep.TotalNS,
		CompileNS:     rep.CompileNS,
		LinkNS:        rep.LinkNS,
		UnitsCompiled: rep.UnitsCompiled,
		UnitsCached:   rep.UnitsCached,
		StateBytes:    rep.StateBytes,
		PerUnitNS:     make(map[string]int64),
	}
	for unit, ur := range rep.Units {
		if ur.Compiled {
			s.PerUnitNS[unit] = ur.CompileNS
		}
	}
	if st := rep.Stats(); st != nil && len(st.Slots) > 0 {
		s.Stats = st
	}
	if exec {
		out, res, err := vm.RunCapture(rep.Program, vm.Config{})
		if err != nil {
			return nil, fmt.Errorf("program execution: %w", err)
		}
		s.Output = out
		s.Exit = res.ExitValue
	}
	return s, nil
}

// CompareHistories runs the same project under several policies.
func CompareHistories(p workload.Profile, modes []compiler.Mode, cfg Config) (map[compiler.Mode]*ProjectRun, error) {
	out := make(map[compiler.Mode]*ProjectRun, len(modes))
	for _, mode := range modes {
		r, err := RunHistory(p, mode, cfg)
		if err != nil {
			return nil, err
		}
		out[mode] = r
	}
	return out, nil
}
