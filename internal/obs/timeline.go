package obs

// The scheduling timeline: a structured per-build event log of what the
// worker pool actually did — one event per unit with enqueue/start/end
// timestamps, the worker slot that ran it, its outcome, and the per-stage
// time split. The build system assembles one Timeline per Build call and
// the flight recorder persists it (internal/history), so `minibuild
// profile` and the serve /dash page can reconstruct the schedule — and its
// critical path (critpath.go) — long after the process exited.
//
// Clock discipline: every timestamp is nanoseconds since the build's
// monotonic epoch, derived exclusively through time.Since of one time.Time
// captured at build start. Wall-clock readings (time.Now().UnixNano() at
// two points, subtracted) must never flow into these fields: an NTP step
// between two readings would fabricate negative or wildly skewed
// durations in the flight recorder. Validate enforces the resulting
// ordering invariants; the flight recorder's single wall-clock field
// (Record.TimeUnixMS) exists only to label records for humans and is
// never used in subtraction.

import (
	"fmt"
	"sort"
)

// Unit outcomes recorded in the timeline.
const (
	// OutcomeSkip: the unit was served whole from the object cache. Skip
	// events are not scheduled on a worker (Worker == -1); their tiny
	// Start..End interval is the cache-decision check itself.
	OutcomeSkip = "skip"
	// OutcomeCompile: the unit compiled normally on a worker.
	OutcomeCompile = "compile"
	// OutcomePanic: the unit's compile panicked and was retried on the
	// stateless fallback (docs/ROBUSTNESS.md).
	OutcomePanic = "panic"
	// OutcomeQuarantine: the unit compiled through its quarantine's
	// stateless fallback.
	OutcomeQuarantine = "quarantine"
	// OutcomeError: the unit's compile failed with a diagnostic. The event
	// still records the time the failing attempt consumed.
	OutcomeError = "error"
	// OutcomeRemote: the unit was served from the shared content-addressed
	// cache (internal/cas) instead of compiling. Remote events are
	// scheduled — the fetch and verify occupy a worker slot — but carry no
	// stage split (nothing compiled).
	OutcomeRemote = "remote"
)

// UnitEvent is one unit's scheduling record within a build. All times are
// nanoseconds since the build's monotonic epoch (the Builder captures one
// time.Time at build start and derives every field via time.Since).
type UnitEvent struct {
	// Unit is the unit name.
	Unit string
	// Worker is the worker slot that compiled the unit, or -1 for units
	// never scheduled (Outcome == OutcomeSkip).
	Worker int
	// Outcome is one of the Outcome* constants.
	Outcome string
	// EnqueueNS is when the unit's compile job became ready for a worker.
	// For skip events it equals StartNS (the decision point).
	EnqueueNS int64
	// StartNS / EndNS bound the unit's compile (or, for skips, the cache
	// decision).
	StartNS, EndNS int64
	// Per-stage split of the compile (zero for skips and fullcache mode).
	FrontendNS, PassesNS, CodegenNS int64
}

// DurNS is the event's own duration.
func (e *UnitEvent) DurNS() int64 { return e.EndNS - e.StartNS }

// Scheduled reports whether the event occupied a worker slot.
func (e *UnitEvent) Scheduled() bool { return e.Worker >= 0 }

// Timeline is one build's scheduling event log.
type Timeline struct {
	// Workers is the pool's worker-slot count.
	Workers int
	// WallNS is the whole build's wall time (partition + compile + link).
	WallNS int64
	// CompileStartNS / CompileWallNS bound the parallel compile phase
	// within the build.
	CompileStartNS int64
	CompileWallNS  int64
	// LinkNS is the link stage's duration (it follows the compile phase).
	LinkNS int64
	// Events has one entry per unit, in unit-name order (scheduling must
	// not leak into the recorded artifact's shape).
	Events []UnitEvent
}

// Compiled counts the events that occupied a worker (everything except
// cache skips).
func (t *Timeline) Compiled() int {
	n := 0
	for i := range t.Events {
		if t.Events[i].Scheduled() {
			n++
		}
	}
	return n
}

// Validate checks the timeline's ordering invariants: events sorted by
// unit name, every timestamp non-negative and ordered enqueue ≤ start ≤
// end, scheduled events within the compile phase and on a valid worker
// slot. A violation means a recording bug (most likely a wall-clock
// reading leaking into what must be monotonic deltas).
func (t *Timeline) Validate() error {
	if t.Workers < 1 {
		return fmt.Errorf("timeline: %d workers", t.Workers)
	}
	if t.WallNS < 0 || t.CompileWallNS < 0 || t.LinkNS < 0 || t.CompileStartNS < 0 {
		return fmt.Errorf("timeline: negative phase duration (wall=%d compile=%d link=%d)",
			t.WallNS, t.CompileWallNS, t.LinkNS)
	}
	if !sort.SliceIsSorted(t.Events, func(i, j int) bool {
		return t.Events[i].Unit < t.Events[j].Unit
	}) {
		return fmt.Errorf("timeline: events not in unit order")
	}
	for i := range t.Events {
		e := &t.Events[i]
		if e.Unit == "" {
			return fmt.Errorf("timeline: event %d has no unit", i)
		}
		if e.EnqueueNS < 0 || e.StartNS < e.EnqueueNS || e.EndNS < e.StartNS {
			return fmt.Errorf("timeline: %s: non-monotonic times enqueue=%d start=%d end=%d",
				e.Unit, e.EnqueueNS, e.StartNS, e.EndNS)
		}
		if e.Scheduled() {
			if e.Worker >= t.Workers {
				return fmt.Errorf("timeline: %s: worker %d out of range [0,%d)", e.Unit, e.Worker, t.Workers)
			}
			if e.Outcome == OutcomeSkip {
				return fmt.Errorf("timeline: %s: skip outcome on worker %d", e.Unit, e.Worker)
			}
			if end := t.CompileStartNS + t.CompileWallNS; t.CompileWallNS > 0 && e.EndNS > end {
				return fmt.Errorf("timeline: %s: ends at %dns, past the compile phase end %dns", e.Unit, e.EndNS, end)
			}
		} else if e.Outcome != OutcomeSkip {
			return fmt.Errorf("timeline: %s: unscheduled event with outcome %q", e.Unit, e.Outcome)
		}
		if e.FrontendNS < 0 || e.PassesNS < 0 || e.CodegenNS < 0 {
			return fmt.Errorf("timeline: %s: negative stage time", e.Unit)
		}
	}
	return nil
}
