// Package obs is the zero-dependency observability layer threaded through
// the whole stack: structured spans for every pipeline stage and pass slot,
// a lock-cheap counters registry safe under the build system's worker pool,
// and two exporters — a Chrome trace_event JSON file (chrome.go) and a
// machine-readable metrics block (metrics.go).
//
// Design rules:
//
//   - Everything is nil-safe. A nil *Tracer, *Counter, or *Sink is a no-op,
//     so instrumented code carries no "is tracing on?" branches beyond the
//     nil checks the calls themselves compile to. Disabled observability
//     costs a few predictable branches per unit, not per event.
//
//   - Hot paths touch atomics, not maps. The Registry hands out *Counter
//     pointers once at setup; after that an update is a single atomic add.
//     Spans are coarser (one per pipeline slot, not per function) and land
//     in the tracer under one short mutex append.
//
//   - Span timestamps are relative to an epoch, not absolute wall-clock:
//     the owning Tracer's creation time when tracing, or the local
//     operation start when a component records spans without a tracer.
package obs

import (
	"sync"
	"time"
)

// Span categories.
const (
	// CatBuild marks whole-build and link spans emitted by the build system.
	CatBuild = "build"
	// CatUnit marks one unit's end-to-end compilation.
	CatUnit = "unit"
	// CatStage marks a per-unit compilation stage (frontend/passes/codegen).
	CatStage = "stage"
	// CatPass marks one pipeline slot's execution within a unit.
	CatPass = "pass"
)

// Span is one timed interval with optional pass-slot detail. The fixed
// fields keep recording allocation-free; exporters map them to trace args.
type Span struct {
	// Name identifies the interval ("frontend", "pass:gvn", "unit main.mc").
	Name string
	// Cat is one of the Cat* categories.
	Cat string
	// Unit is the owning compilation unit ("" for build-level spans).
	Unit string
	// TID is the logical thread: 0 for the build orchestrator, worker
	// slot + 1 for compile workers.
	TID int
	// Start is nanoseconds since the epoch (see package doc); Dur is the
	// span length in nanoseconds.
	Start, Dur int64

	// Pass-slot detail, populated for CatPass spans only.

	// Slot is the pipeline slot index (-1 for non-pass spans).
	Slot int
	// Runs/Skipped/Dormant count pass executions within the span.
	Runs, Skipped, Dormant int
	// Hashes counts fingerprint computations attributed to the span;
	// HashNS is their total time, SavedNS the estimated time skipping saved.
	Hashes  int
	HashNS  int64
	SavedNS int64
}

// Tracer collects spans from concurrent workers. The zero value is not
// usable; create one with NewTracer. All methods are safe for concurrent
// use and safe on a nil receiver (no-ops), so a nil *Tracer is the
// "tracing disabled" state.
type Tracer struct {
	epoch time.Time
	mu    sync.Mutex
	spans []Span
}

// NewTracer starts a tracer; its creation time is the trace epoch.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Now returns nanoseconds since the trace epoch (0 on a nil tracer).
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch).Nanoseconds()
}

// Emit records one span (no-op on a nil tracer).
func (t *Tracer) Emit(sp Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// Spans returns a copy of everything recorded so far.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Len reports the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Sink is the per-worker observability context handed to a compiler: the
// shared tracer, the pre-resolved hot-path pass counters, and the worker's
// logical thread id. A nil *Sink (or nil fields) disables the corresponding
// recording.
type Sink struct {
	// Tracer receives spans (nil: spans are kept only in unit results).
	Tracer *Tracer
	// Pass receives pipeline counter updates (nil: none recorded).
	Pass *PassCounters
	// TID is this worker's logical thread id for spans.
	TID int
}

// Trace returns the sink's tracer (nil-safe).
func (s *Sink) Trace() *Tracer {
	if s == nil {
		return nil
	}
	return s.Tracer
}

// PassCtrs returns the sink's pass counters (nil-safe).
func (s *Sink) PassCtrs() *PassCounters {
	if s == nil {
		return nil
	}
	return s.Pass
}

// ThreadID returns the sink's logical thread id (0 on nil).
func (s *Sink) ThreadID() int {
	if s == nil {
		return 0
	}
	return s.TID
}
