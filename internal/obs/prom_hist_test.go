package obs

import (
	"strconv"
	"strings"
	"testing"
)

func testHistSnapshots() map[string]HistogramSnapshot {
	var a, b Histogram
	a.Observe(1)
	a.Observe(BucketBound(3))
	a.Observe(BucketBound(HistBuckets-1) + 1) // +Inf
	b.Observe(5000)
	return map[string]HistogramSnapshot{
		"unit.compile_ns": a.Snapshot(),
		"build.wall_ns":   b.Snapshot(),
	}
}

func TestFormatPromHistShape(t *testing.T) {
	out := FormatPromHist(testHistSnapshots())

	for _, want := range []string{
		"# TYPE statefulcc_unit_compile_ns histogram",
		"# TYPE statefulcc_build_wall_ns histogram",
		`statefulcc_unit_compile_ns_bucket{le="+Inf"} 3`,
		"statefulcc_unit_compile_ns_count 3",
		"statefulcc_build_wall_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// Sorted by name: build.wall_ns before unit.compile_ns.
	if strings.Index(out, "build_wall") > strings.Index(out, "unit_compile") {
		t.Error("histogram families not sorted by name")
	}
	// Buckets must be cumulative and non-decreasing, ending at count.
	var prev int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "statefulcc_unit_compile_ns_bucket") {
			continue
		}
		v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket not cumulative: %q after %d", line, prev)
		}
		prev = v
	}
	if prev != 3 {
		t.Errorf("final cumulative bucket = %d, want 3", prev)
	}
}

func TestFormatPromHistDeterministic(t *testing.T) {
	hists := testHistSnapshots()
	a, b := FormatPromHist(hists), FormatPromHist(hists)
	if a != b {
		t.Error("two exports of the same snapshots differ")
	}
}

func TestParsePromHistRoundTrip(t *testing.T) {
	hists := testHistSnapshots()
	parsed := ParsePromHist(FormatPromHist(hists))

	for name, want := range hists {
		got, ok := parsed[PromName(name)]
		if !ok {
			t.Fatalf("parsed output missing %s", PromName(name))
		}
		if got.Sum != want.Sum || got.Count != want.Count {
			t.Errorf("%s: sum/count %d/%d, want %d/%d", name, got.Sum, got.Count, want.Sum, want.Count)
		}
		if len(got.Buckets) != len(want.Buckets) {
			t.Fatalf("%s: %d buckets, want %d", name, len(got.Buckets), len(want.Buckets))
		}
		for i := range want.Buckets {
			if got.Buckets[i] != want.Buckets[i] {
				t.Errorf("%s: bucket %d = %d, want %d", name, i, got.Buckets[i], want.Buckets[i])
			}
		}
	}
}

func TestParsePromIgnoresHistogramGracefully(t *testing.T) {
	// A combined counters+histograms exposition (what /metrics serves): the
	// counter parser must still recover every counter exactly, and treat
	// histogram sample lines as just more name→value pairs, not errors.
	counters := map[string]int64{"pass.runs": 7, "build.count": 2}
	text := FormatProm(counters) + FormatPromHist(testHistSnapshots())
	parsed := ParseProm(text)
	for name, want := range counters {
		if parsed[PromName(name)] != want {
			t.Errorf("%s = %d, want %d", PromName(name), parsed[PromName(name)], want)
		}
	}
	if parsed["statefulcc_unit_compile_ns_count"] != 3 {
		t.Errorf("histogram _count not parsed as a plain sample: %v", parsed)
	}
}
