package obs

// Critical-path analysis over a build's scheduling timeline. The question
// it answers is the one counters cannot: *which chain of units bounded
// this build's wall time, and what were the other workers doing while it
// ran?*
//
// Units have no inter-unit compile dependencies at file granularity (the
// link stage is the only barrier), so the scheduled DAG is the one the
// worker pool induced: each worker runs its units sequentially, and the
// critical path is reconstructed backwards from the last-finishing unit
// through its worker's occupancy chain. The chain's self times plus its
// waits exactly tile [0, TotalNS], so TotalNS ≤ the compile phase wall
// time and ≥ the longest single unit — the invariants the tests pin.
// When function-level cross-unit incrementality lands (ROADMAP), its
// dependency edges will feed the same walk through EnqueueNS.
//
// Wait taxonomy (the "why was the pool not fully busy" blame):
//
//   - queue wait: a unit was enqueued and ready, but every worker was
//     busy (StartNS − EnqueueNS summed over scheduled units);
//   - dependency wait: a unit's job became ready only partway into the
//     compile phase (EnqueueNS − CompileStartNS) — structurally zero for
//     file-level builds, nonzero once dependency-ordered scheduling lands;
//   - starvation: a worker sat idle while the phase still ran (phase wall
//     − busy, summed over workers) — the cost of a lopsided schedule.

import (
	"fmt"
	"sort"
	"strings"
)

// Wait causes attributed to critical-chain gaps.
const (
	// WaitQueue: the unit was ready before its worker freed up; the gap is
	// the pool dispatch latency.
	WaitQueue = "queue-wait"
	// WaitDependency: the unit's job was not yet enqueued when its worker
	// freed up — the start was bounded by job readiness, not the pool.
	WaitDependency = "dependency-wait"
	// WaitStarved: the worker was free and no job was running on it — lead-in
	// idle before the chain's first unit started.
	WaitStarved = "starvation"
)

// ChainLink is one unit on the critical path.
type ChainLink struct {
	// Unit / Worker / Outcome identify the event.
	Unit    string
	Worker  int
	Outcome string
	// StartNS / EndNS are the unit's scheduled interval (timeline clock).
	StartNS, EndNS int64
	// SelfNS is the unit's own compile time (EndNS − StartNS).
	SelfNS int64
	// WaitNS is the gap between the previous chain link's end (or the
	// compile phase start) and this unit's start.
	WaitNS int64
	// WaitCause classifies a nonzero WaitNS (Wait* constants).
	WaitCause string
}

// WorkerLoad is one worker slot's utilization of the compile phase.
type WorkerLoad struct {
	Worker int
	// Units compiled on this slot.
	Units int
	// BusyNS is time spent inside unit compiles; IdleNS is the rest of the
	// compile phase (including slots that never received a unit).
	BusyNS, IdleNS int64
	// LongestGapNS is the worker's longest single idle stretch.
	LongestGapNS int64
	// UtilizationPct is BusyNS over the compile phase wall time.
	UtilizationPct float64
}

// CritPath is the scheduling analysis of one build's timeline.
type CritPath struct {
	// WallNS / CompileWallNS / LinkNS echo the timeline's phase times.
	WallNS, CompileWallNS, LinkNS int64
	// Chain is the critical path, first unit first. Empty when nothing
	// compiled (a fully cached build's wall time is bounded by the cache
	// check and link, not by any unit).
	Chain []ChainLink
	// PathNS is the chain's compile time (sum of SelfNS).
	PathNS int64
	// TotalNS is the chain's end-to-end extent — waits included — measured
	// from the compile phase start: the quantity that bounds the phase's
	// wall time from below.
	TotalNS int64
	// LongestUnit / LongestUnitNS is the single slowest unit (on or off
	// the chain).
	LongestUnit   string
	LongestUnitNS int64
	// Workers is the per-slot utilization table.
	Workers []WorkerLoad
	// Wait-cause totals across the whole schedule (not just the chain).
	QueueWaitNS, DependencyWaitNS, StarvationNS int64
}

// Analyze reconstructs the critical path and worker-utilization blame from
// a timeline. It is deterministic: ties (equal end times) break on unit
// name, so two identical schedules analyze identically.
func Analyze(t *Timeline) *CritPath {
	cp := &CritPath{WallNS: t.WallNS, CompileWallNS: t.CompileWallNS, LinkNS: t.LinkNS}

	// Scheduled events only, grouped into per-worker lanes. Times are
	// rebased to the compile phase start so chain waits and worker gaps
	// measure scheduling, not the partition stage that precedes it.
	lanes := make(map[int][]UnitEvent)
	var scheduled int
	for i := range t.Events {
		e := t.Events[i]
		if !e.Scheduled() {
			continue
		}
		e.EnqueueNS = max64(0, e.EnqueueNS-t.CompileStartNS)
		e.StartNS = max64(0, e.StartNS-t.CompileStartNS)
		e.EndNS = max64(0, e.EndNS-t.CompileStartNS)
		lanes[e.Worker] = append(lanes[e.Worker], e)
		scheduled++
		if d := e.DurNS(); d > cp.LongestUnitNS || (d == cp.LongestUnitNS && cp.LongestUnit > e.Unit) {
			cp.LongestUnit, cp.LongestUnitNS = e.Unit, d
		}
	}
	for w := range lanes {
		lane := lanes[w]
		sort.Slice(lane, func(i, j int) bool {
			if lane[i].StartNS != lane[j].StartNS {
				return lane[i].StartNS < lane[j].StartNS
			}
			return lane[i].Unit < lane[j].Unit
		})
	}

	// Per-worker utilization and idle-gap blame over the compile phase.
	// Every configured slot appears, including ones that never got a unit —
	// a fully idle slot is exactly the starvation signal worth surfacing.
	phase := t.CompileWallNS
	for w := 0; w < t.Workers; w++ {
		wl := WorkerLoad{Worker: w}
		var cursor int64
		for _, e := range lanes[w] {
			wl.Units++
			wl.BusyNS += e.DurNS()
			if gap := e.StartNS - cursor; gap > wl.LongestGapNS {
				wl.LongestGapNS = gap
			}
			cursor = e.EndNS
		}
		if tail := phase - cursor; tail > wl.LongestGapNS {
			wl.LongestGapNS = tail
		}
		wl.IdleNS = max64(0, phase-wl.BusyNS)
		if phase > 0 {
			wl.UtilizationPct = 100 * float64(wl.BusyNS) / float64(phase)
		}
		cp.Workers = append(cp.Workers, wl)
		cp.StarvationNS += wl.IdleNS
	}

	// Whole-schedule wait totals.
	for _, lane := range lanes {
		for _, e := range lane {
			cp.QueueWaitNS += max64(0, e.StartNS-e.EnqueueNS)
			cp.DependencyWaitNS += e.EnqueueNS
		}
	}

	if scheduled == 0 {
		return cp
	}

	// The critical chain: start from the event with the latest end (ties
	// break on unit name), then walk back through the worker's occupancy —
	// each predecessor is the latest event on the same worker ending at or
	// before the current start.
	last := latestEnd(lanes)
	var chain []ChainLink
	visited := make(map[string]bool)
	cur := last
	for {
		visited[cur.Unit] = true
		link := ChainLink{
			Unit: cur.Unit, Worker: cur.Worker, Outcome: cur.Outcome,
			StartNS: cur.StartNS, EndNS: cur.EndNS, SelfNS: cur.DurNS(),
		}
		pred, ok := predecessor(lanes[cur.Worker], cur, visited)
		var freeAt int64
		if ok {
			freeAt = pred.EndNS
		}
		link.WaitNS = max64(0, cur.StartNS-freeAt)
		link.WaitCause = classifyWait(link.WaitNS, cur.EnqueueNS, freeAt, ok)
		chain = append(chain, link)
		if !ok {
			break
		}
		cur = pred
	}
	// Reverse into schedule order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	cp.Chain = chain
	for _, l := range chain {
		cp.PathNS += l.SelfNS
	}
	cp.TotalNS = last.EndNS
	return cp
}

// classifyWait attributes a chain gap: zero gaps have no cause; a gap is
// dependency wait only when readiness (enqueue − freeAt) accounts for its
// dominant share — job-prep stamps land a few µs after the phase opens,
// and that sliver must not relabel a long idle stretch; otherwise a ready
// unit on a worker with prior occupancy waited on dispatch (queue), and a
// gap before a worker's first unit is lead-in starvation.
func classifyWait(wait, enqueue, freeAt int64, hadPred bool) string {
	switch {
	case wait <= 0:
		return ""
	case enqueue-freeAt > wait/2:
		return WaitDependency
	case hadPred:
		return WaitQueue
	default:
		return WaitStarved
	}
}

// latestEnd returns the scheduled event with the maximum EndNS, breaking
// ties on unit name for determinism.
func latestEnd(lanes map[int][]UnitEvent) UnitEvent {
	var best UnitEvent
	found := false
	for _, lane := range lanes {
		for _, e := range lane {
			if !found || e.EndNS > best.EndNS || (e.EndNS == best.EndNS && e.Unit < best.Unit) {
				best, found = e, true
			}
		}
	}
	return best
}

// predecessor finds the latest event on the lane ending at or before
// cur's start (excluding units already on the chain, which also keeps the
// walk terminating when zero-duration events share a timestamp), ties
// broken on unit name.
func predecessor(lane []UnitEvent, cur UnitEvent, visited map[string]bool) (UnitEvent, bool) {
	var best UnitEvent
	found := false
	for _, e := range lane {
		if visited[e.Unit] {
			continue
		}
		if e.EndNS > cur.StartNS {
			continue
		}
		if !found || e.EndNS > best.EndNS || (e.EndNS == best.EndNS && e.Unit < best.Unit) {
			best, found = e, true
		}
	}
	return best, found
}

// String renders a compact multi-line summary (the `minibuild profile`
// table builds on the same data with more detail).
func (cp *CritPath) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "critical path: %d units, %.3fms compile + %.3fms wait = %.3fms of %.3fms compile wall\n",
		len(cp.Chain), ms(cp.PathNS), ms(cp.TotalNS-cp.PathNS), ms(cp.TotalNS), ms(cp.CompileWallNS))
	for _, l := range cp.Chain {
		wait := ""
		if l.WaitNS > 0 {
			wait = fmt.Sprintf("  +%.3fms %s", ms(l.WaitNS), l.WaitCause)
		}
		fmt.Fprintf(&sb, "  %-24s w%d %8.3fms%s\n", l.Unit, l.Worker, ms(l.SelfNS), wait)
	}
	fmt.Fprintf(&sb, "waits: queue %.3fms, dependency %.3fms, starvation %.3fms\n",
		ms(cp.QueueWaitNS), ms(cp.DependencyWaitNS), ms(cp.StarvationNS))
	return sb.String()
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
