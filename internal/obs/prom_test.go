package obs

import (
	"flag"
	"io"
	"strings"
	"testing"
)

// registrySnapshot exercises real counters so the test covers the same
// path serve's /metrics uses: Registry → Snapshot → FormatProm.
func registrySnapshot() (*Registry, map[string]int64) {
	reg := NewRegistry()
	pc := reg.Pass()
	pc.Runs.Add(7)
	pc.Skipped.Add(3)
	pc.DecSkipped.Add(3)
	pc.DecCold.Add(4)
	pc.DecNotDormant.Add(2)
	pc.DecFPMismatch.Add(1)
	reg.Counter(CtrBuilds).Add(1)
	return reg, reg.Snapshot()
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"pass.runs":                    "statefulcc_pass_runs",
		"decision.fingerprint_mismatch": "statefulcc_decision_fingerprint_mismatch",
		"state.bytes-written":          "statefulcc_state_bytes_written",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestFormatPromDeterministic: two snapshots of the same registry render
// byte-identically (satellite: deterministically ordered exports).
func TestFormatPromDeterministic(t *testing.T) {
	reg, _ := registrySnapshot()
	a := FormatProm(reg.Snapshot())
	b := FormatProm(reg.Snapshot())
	if a != b {
		t.Errorf("two renders of the same registry differ:\n%s\n---\n%s", a, b)
	}
	// Ordering must be sorted, not map order: check a known pair.
	if strings.Index(a, "statefulcc_build_count") > strings.Index(a, "statefulcc_pass_runs") {
		t.Errorf("samples not sorted:\n%s", a)
	}
}

// TestPromRoundTrip: ParseProm(FormatProm(snap)) reconstructs the snapshot
// exactly — the reconciliation contract behind serve's /metrics endpoint.
func TestPromRoundTrip(t *testing.T) {
	_, snap := registrySnapshot()
	parsed := ParseProm(FormatProm(snap))
	if len(parsed) != len(snap) {
		t.Fatalf("round trip lost counters: %d -> %d", len(snap), len(parsed))
	}
	for name, v := range snap {
		if got := parsed[PromName(name)]; got != v {
			t.Errorf("%s: %d != %d after round trip", name, got, v)
		}
	}
}

// TestPromFormatShape: every counter emits HELP, TYPE counter, and a sample
// line — the minimum for Prometheus text exposition format 0.0.4.
func TestPromFormatShape(t *testing.T) {
	_, snap := registrySnapshot()
	out := FormatProm(snap)
	var samples int
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "), strings.HasPrefix(line, "# TYPE "):
			if !strings.Contains(line, PromPrefix) {
				t.Errorf("metadata line without prefix: %q", line)
			}
			if strings.HasPrefix(line, "# TYPE ") && !strings.HasSuffix(line, " counter") {
				t.Errorf("non-counter TYPE line: %q", line)
			}
		default:
			samples++
			if !strings.HasPrefix(line, PromPrefix) {
				t.Errorf("sample line without prefix: %q", line)
			}
		}
	}
	if samples != len(snap) {
		t.Errorf("%d sample lines for %d counters", samples, len(snap))
	}
}

func TestDecisionCounts(t *testing.T) {
	_, snap := registrySnapshot()
	dec := DecisionCounts(snap)
	if len(dec) == 0 {
		t.Fatal("no decision counters extracted")
	}
	for name := range dec {
		if !strings.HasPrefix(name, "decision.") {
			t.Errorf("non-decision counter leaked: %q", name)
		}
	}
	if dec[CtrDecCold] != 4 || dec[CtrDecSkippedDormant] != 3 {
		t.Errorf("decision values wrong: %v", dec)
	}
}

// TestFormatMetricsDeterministic: the -metrics block is byte-stable across
// snapshots of the same registry, and survives a parse round trip.
func TestFormatMetricsDeterministic(t *testing.T) {
	reg, snap := registrySnapshot()
	a := FormatMetrics(reg.Snapshot())
	b := FormatMetrics(reg.Snapshot())
	if a != b {
		t.Errorf("two -metrics renders differ:\n%s\n---\n%s", a, b)
	}
	parsed := ParseMetrics(a)
	for name, v := range snap {
		if parsed[name] != v {
			t.Errorf("%s: %d != %d after -metrics round trip", name, parsed[name], v)
		}
	}
}

// TestCLIExportFlags: the shared flag bundle wires -trace/-metrics the same
// way for any FlagSet (satellite: dedupe minicc/minibuild wiring).
func TestCLIExportFlags(t *testing.T) {
	var ex CLIExport
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	ex.Register(fs)
	if err := fs.Parse([]string{"-metrics"}); err != nil {
		t.Fatal(err)
	}
	if !ex.Metrics {
		t.Error("-metrics flag not wired")
	}
	if ex.Tracer() != nil {
		t.Error("tracer created without -trace")
	}

	var sb, notes strings.Builder
	_, snap := registrySnapshot()
	if err := ex.Export(&sb, &notes, snap); err != nil {
		t.Fatal(err)
	}
	if parsed := ParseMetrics(sb.String()); parsed[CtrPassRuns] != snap[CtrPassRuns] {
		t.Errorf("exported metrics diverge: %v vs %v", parsed, snap)
	}
	if notes.Len() != 0 {
		t.Errorf("unexpected note output without -trace: %q", notes.String())
	}
}
