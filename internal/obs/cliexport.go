package obs

// CLIExport is the shared -trace/-metrics flag wiring used by cmd/minibuild,
// cmd/minicc, and the serve daemon (previously copied between the two
// binaries). Register the flags, hand Tracer() to the builder/compiler, and
// call Export once with the final counters snapshot.

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// CLIExport bundles the observability export flags of a CLI.
type CLIExport struct {
	// TraceOut is the -trace destination ("" disables tracing).
	TraceOut string
	// Metrics is the -metrics switch (print the fenced counters block).
	Metrics bool

	tracer *Tracer
}

// Register installs the -trace and -metrics flags on fs.
func (c *CLIExport) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.TraceOut, "trace", "", "write a Chrome trace_event JSON profile to this file")
	fs.BoolVar(&c.Metrics, "metrics", false, "print the machine-readable counters block")
}

// Tracer returns the shared tracer, created on first call when -trace is
// set; nil (tracing disabled) otherwise.
func (c *CLIExport) Tracer() *Tracer {
	if c == nil || c.TraceOut == "" {
		return nil
	}
	if c.tracer == nil {
		c.tracer = NewTracer()
	}
	return c.tracer
}

// Export emits whatever the flags enabled: the metrics block for snap to w,
// and the Chrome trace file to TraceOut with a one-line note to notew.
func (c *CLIExport) Export(w, notew io.Writer, snap map[string]int64) error {
	if c == nil {
		return nil
	}
	if c.Metrics {
		fmt.Fprint(w, FormatMetrics(snap))
	}
	if c.TraceOut != "" {
		f, err := os.Create(c.TraceOut)
		if err != nil {
			return err
		}
		werr := WriteChrome(f, c.Tracer().Spans(), snap)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Fprintf(notew, "trace: %d spans written to %s (load in chrome://tracing or ui.perfetto.dev)\n",
			c.Tracer().Len(), c.TraceOut)
	}
	return nil
}
