package obs

// The counters registry. Names are resolved to *Counter once at setup;
// from then on every update is one atomic add, which is what keeps the
// registry safe and cheap under the build system's worker pool.

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Standard counter names. Components may register additional names; these
// are the ones the stack emits and the docs/metrics schema guarantee.
const (
	// Pipeline counters (updated once per compiled unit by the driver).
	CtrPassRuns         = "pass.runs"
	CtrPassDormant      = "pass.dormant"
	CtrPassSkipped      = "pass.skipped"
	CtrPassMispredicted = "pass.mispredicted"
	CtrPassRunNS        = "pass.run_ns"
	CtrPassSavedNS      = "pass.saved_ns"
	CtrHashes           = "fingerprint.hashes"
	CtrHashNS           = "fingerprint.hash_ns"
	// Hierarchical-fingerprint memo effectiveness: block hashes served from
	// the memo vs recomputed. Their ratio is the hierarchy's hit rate;
	// `minibuild explain` renders it per pass (docs/PERFORMANCE.md).
	CtrBlocksMemoized = "fingerprint.blocks_memoized"
	CtrBlocksRehashed = "fingerprint.blocks_rehashed"

	// Decision-provenance counters: every pass execution decision falls
	// into exactly one bucket (see core.Reason* and docs/OBSERVABILITY.md).
	// decision.skipped_dormant always equals pass.skipped; it exists so the
	// whole taxonomy lives under one namespace in exports.
	CtrDecSkippedDormant = "decision.skipped_dormant"
	CtrDecCold           = "decision.cold_state"
	CtrDecNotDormant     = "decision.not_dormant"
	CtrDecFPMismatch     = "decision.fingerprint_mismatch"
	CtrDecPolicy         = "decision.policy_disabled"
	CtrDecQuarantined    = "decision.quarantined"

	// Soundness-sentinel counters: audit.sampled counts would-be skips the
	// sentinel executed anyway; audit.unsound counts the ones whose output
	// fingerprint differed from the input — unsound skips, each of which
	// auto-quarantines its (unit, pass) pair (docs/ROBUSTNESS.md).
	CtrAuditSampled = "audit.sampled"
	CtrAuditUnsound = "audit.unsound"

	// Per-unit stage counters (updated by the build system at commit).
	CtrFrontendNS = "stage.frontend_ns"
	CtrPassesNS   = "stage.passes_ns"
	CtrCodegenNS  = "stage.codegen_ns"

	// Build counters.
	CtrBuilds        = "build.count"
	CtrUnitsCompiled = "build.units_compiled"
	CtrUnitsCached   = "build.units_cached"
	CtrLinkNS        = "build.link_ns"

	// Adversity counters: pass panics converted to unit diagnostics,
	// builds abandoned by cancellation/deadline, and quarantine
	// engagements/lifts (see docs/ROBUSTNESS.md).
	CtrBuildPanics       = "build.panic"
	CtrBuildCancelled    = "build.cancelled"
	CtrQuarantineEngaged = "quarantine.engaged"
	CtrQuarantineLifted  = "quarantine.lifted"

	// Full-cache counters.
	CtrCacheHits   = "fullcache.hits"
	CtrCacheMisses = "fullcache.misses"

	// Dependency-footprint cross-check counters (internal/footprint,
	// docs/ROBUSTNESS.md): footprint.checked counts units whose cache
	// decision was cross-checked against their traced read footprint;
	// footprint.missed counts missed invalidations — a unit the declared
	// content-hash model would reuse while a footprint member changed (a
	// soundness violation, the thing `make footprint-guard` fails on);
	// footprint.redundant counts the reverse — a recompile the footprint
	// proves unnecessary (a performance, not correctness, defect).
	CtrFootprintChecked   = "footprint.checked"
	CtrFootprintMissed    = "footprint.missed"
	CtrFootprintRedundant = "footprint.redundant"

	// Persistent-state counters (updated concurrently by workers).
	CtrStateLoads      = "state.loads"
	CtrStateLoadMisses = "state.load_misses"
	CtrStateSaves      = "state.saves"

	// Degradation counters: state/history I/O failures the build absorbed
	// (cold start, dropped save, dropped flight-recorder record) instead
	// of failing. Nonzero values mean the build ran degraded but correct;
	// `minibuild serve` exports them so operators can alert on them.
	CtrStateIOErrors   = "state.io_error"
	CtrHistoryIOErrors = "history.io_error"

	// Worker-pool counters.
	CtrWorkerBusyNS = "worker.busy_ns"

	// Shared-cache (internal/cas) counters, emitted by both the builder
	// (client side) and `minibuild serve` (server side); /metrics on a serve
	// instance exports the two merged by addition
	// (docs/ARCHITECTURE.md, docs/OBSERVABILITY.md).
	//
	// cas.hit / cas.miss count action lookups that did / did not yield a
	// verified remote object; their ratio is the shared-cache hit rate.
	// cas.verify_failed counts blobs or action entries rejected by the
	// strict byte-verify rule — every one of them is ALSO a miss (a poisoned
	// blob is never served; the unit recompiles locally).
	// cas.coalesced counts builds that waited on another client's in-flight
	// compile of the same action instead of compiling (singleflight).
	// cas.published counts objects published to the store after an honest
	// local compile; cas.io_error counts CAS transport/storage failures the
	// build degraded around (recompiled locally, warned, carried on).
	CtrCASHits         = "cas.hit"
	CtrCASMisses       = "cas.miss"
	CtrCASVerifyFailed = "cas.verify_failed"
	CtrCASCoalesced    = "cas.coalesced"
	CtrCASPublished    = "cas.published"
	CtrCASIOErrors     = "cas.io_error"
	// cas.evicted counts tenant-namespace LRU evictions on the server.
	CtrCASEvicted = "cas.evicted"

	// Network-adversity counters (docs/ROBUSTNESS.md, "Network adversity").
	// Client side: cas.net_error counts failed wire attempts — transport
	// errors, mid-body hangups, 5xx responses, blown deadline budgets — the
	// build degraded around; cas.retry counts re-attempts issued for
	// retryable failures (the strict taxonomy: 404/410/507 and every other
	// service verdict never burns a retry); cas.hedged counts hedged second
	// requests issued against tail-latency spikes and cas.hedge_won the
	// hedges whose response arrived first. The circuit breaker's lifecycle:
	// cas.breaker_trips counts closed/half-open → open transitions,
	// cas.breaker_probes half-open probe requests, cas.breaker_recovered
	// half-open → closed recoveries, and cas.breaker_open requests
	// fast-failed while open (each is also a miss on the fetch path — the
	// degraded build compiles locally without waiting on a dead backend).
	CtrCASNetErrors        = "cas.net_error"
	CtrCASRetries          = "cas.retry"
	CtrCASHedged           = "cas.hedged"
	CtrCASHedgeWins        = "cas.hedge_won"
	CtrCASBreakerOpen      = "cas.breaker_open"
	CtrCASBreakerTrips     = "cas.breaker_trips"
	CtrCASBreakerProbes    = "cas.breaker_probes"
	CtrCASBreakerRecovered = "cas.breaker_recovered"

	// Server crash-restart recovery counters (cas.Server over a DiskCAS):
	// cas.recovered_refs counts tenant references rebuilt from the on-disk
	// ref markers at startup; cas.recovered_orphans counts markers and
	// blobs dropped because their counterpart vanished mid-crash;
	// cas.lease_expired counts coalescing flights the janitor expired past
	// the lease grace (a leader that died without publishing or
	// abandoning); cas.body_rejected counts over-limit request bodies
	// refused at the wire before they could balloon the server.
	CtrCASRecoveredRefs    = "cas.recovered_refs"
	CtrCASRecoveredOrphans = "cas.recovered_orphans"
	CtrCASLeaseExpired     = "cas.lease_expired"
	CtrCASBodyRejected     = "cas.body_rejected"
)

// Counter is a monotonically updated 64-bit metric. All methods are atomic
// and safe on a nil receiver (no-ops), so unresolved counters cost nothing.
type Counter struct {
	v int64
}

// Add folds n into the counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	atomic.AddInt64(&c.v, n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on nil).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(&c.v)
}

// Registry is a named-counter (and named-histogram, histogram.go) table.
// Counter/Histogram resolve names under a mutex; the returned pointers are
// then update-able lock-free, so the mutex is off every hot path. The zero
// value is not usable; create with NewRegistry.
type Registry struct {
	mu sync.Mutex
	m  map[string]*Counter
	h  map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]*Counter), h: make(map[string]*Histogram)}
}

// Counter returns the named counter, creating it on first use. Nil-safe:
// a nil registry returns nil, and nil counters no-op.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.m[name]
	if !ok {
		c = &Counter{}
		r.m[name] = c
	}
	return c
}

// Snapshot returns the current value of every counter.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.m))
	for name, c := range r.m {
		out[name] = c.Load()
	}
	return out
}

// Names returns the registered counter names, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.m))
	for name := range r.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// PassCounters are the pipeline driver's hot-path counters, pre-resolved
// so the driver updates them without touching the registry.
type PassCounters struct {
	Runs, Dormant, Skipped, Mispredicted *Counter
	RunNS, SavedNS                       *Counter
	Hashes, HashNS                       *Counter
	BlocksMemoized, BlocksRehashed       *Counter
	// Soundness-sentinel totals (audit.* counters).
	Audited, Unsound *Counter
	// Decision-provenance buckets (decision.* counters).
	DecSkipped, DecCold, DecNotDormant, DecFPMismatch, DecPolicy, DecQuarantined *Counter
}

// Pass resolves the standard pipeline counters (nil-safe: a nil registry
// yields nil, which disables pipeline counting).
func (r *Registry) Pass() *PassCounters {
	if r == nil {
		return nil
	}
	return &PassCounters{
		Runs:           r.Counter(CtrPassRuns),
		Dormant:        r.Counter(CtrPassDormant),
		Skipped:        r.Counter(CtrPassSkipped),
		Mispredicted:   r.Counter(CtrPassMispredicted),
		RunNS:          r.Counter(CtrPassRunNS),
		SavedNS:        r.Counter(CtrPassSavedNS),
		Hashes:         r.Counter(CtrHashes),
		HashNS:         r.Counter(CtrHashNS),
		BlocksMemoized: r.Counter(CtrBlocksMemoized),
		BlocksRehashed: r.Counter(CtrBlocksRehashed),
		Audited:        r.Counter(CtrAuditSampled),
		Unsound:        r.Counter(CtrAuditUnsound),
		DecSkipped:     r.Counter(CtrDecSkippedDormant),
		DecCold:        r.Counter(CtrDecCold),
		DecNotDormant:  r.Counter(CtrDecNotDormant),
		DecFPMismatch:  r.Counter(CtrDecFPMismatch),
		DecPolicy:      r.Counter(CtrDecPolicy),
		DecQuarantined: r.Counter(CtrDecQuarantined),
	}
}
