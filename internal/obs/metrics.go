package obs

// The machine-readable metrics block: a stable, sorted, line-oriented
// rendering of a counters snapshot, fenced so log scrapers can cut it out
// of surrounding CLI output. Derived-rate helpers live here too so every
// consumer computes them the same way.

import (
	"fmt"
	"sort"
	"strings"
)

// Metrics block fence markers.
const (
	MetricsHeader = "== metrics =="
	MetricsFooter = "== end metrics =="
)

// FormatMetrics renders a counters snapshot as the fenced metrics block:
// one "name<TAB>value" line per counter, sorted by name.
func FormatMetrics(snap map[string]int64) string {
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString(MetricsHeader + "\n")
	for _, name := range names {
		fmt.Fprintf(&sb, "%s\t%d\n", name, snap[name])
	}
	sb.WriteString(MetricsFooter + "\n")
	return sb.String()
}

// ParseMetrics parses a FormatMetrics block back into a snapshot (used by
// tests and scrapers); text outside the fence is ignored.
func ParseMetrics(s string) map[string]int64 {
	out := make(map[string]int64)
	in := false
	for _, line := range strings.Split(s, "\n") {
		switch strings.TrimSpace(line) {
		case MetricsHeader:
			in = true
			continue
		case MetricsFooter:
			in = false
			continue
		}
		if !in {
			continue
		}
		name, val, ok := strings.Cut(line, "\t")
		if !ok {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(val, "%d", &v); err == nil {
			out[name] = v
		}
	}
	return out
}

// SkipRate returns the fraction of pass executions avoided by dormancy
// records: skipped / (runs + skipped). Zero when nothing ran.
func SkipRate(snap map[string]int64) float64 {
	runs, skipped := snap[CtrPassRuns], snap[CtrPassSkipped]
	if runs+skipped == 0 {
		return 0
	}
	return float64(skipped) / float64(runs+skipped)
}

// Utilization returns the worker-pool utilization for a compile phase:
// total busy time across workers divided by workers × phase wall time.
func Utilization(busyNS []int64, phaseWallNS int64) float64 {
	if len(busyNS) == 0 || phaseWallNS <= 0 {
		return 0
	}
	var busy int64
	for _, b := range busyNS {
		busy += b
	}
	return float64(busy) / (float64(phaseWallNS) * float64(len(busyNS)))
}
