package obs

// Prometheus text-format exporter for a counters snapshot, used by the
// `minibuild serve` /metrics endpoint. Every registry counter is monotonic,
// so everything exports as a prometheus counter; names are the registry
// names with dots replaced by underscores under a "statefulcc_" prefix
// (e.g. pass.runs → statefulcc_pass_runs). Output is sorted by name so two
// exports of the same snapshot are byte-identical.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// PromPrefix is the metric-name namespace of every exported counter.
const PromPrefix = "statefulcc_"

// PromName maps a registry counter name to its Prometheus metric name.
func PromName(name string) string {
	var sb strings.Builder
	sb.WriteString(PromPrefix)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// FormatProm renders a counters snapshot as Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers plus one sample per counter,
// sorted by registry name. The values reconcile exactly with the snapshot.
func FormatProm(snap map[string]int64) string {
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		pn := PromName(name)
		fmt.Fprintf(&sb, "# HELP %s statefulcc obs registry counter %q (see docs/OBSERVABILITY.md).\n", pn, name)
		fmt.Fprintf(&sb, "# TYPE %s counter\n", pn)
		fmt.Fprintf(&sb, "%s %d\n", pn, snap[name])
	}
	return sb.String()
}

// FormatPromHist renders histogram snapshots as Prometheus text exposition
// histograms: cumulative `_bucket{le="..."}` samples (le in nanoseconds,
// ending at `+Inf`), `_sum`, and `_count`, sorted by registry name — two
// exports of the same snapshots are byte-identical. Appended after
// FormatProm's counters by the `minibuild serve` /metrics endpoint.
func FormatPromHist(hists map[string]HistogramSnapshot) string {
	names := make([]string, 0, len(hists))
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		h := hists[name]
		pn := PromName(name)
		fmt.Fprintf(&sb, "# HELP %s statefulcc obs registry histogram %q in nanoseconds (see docs/OBSERVABILITY.md).\n", pn, name)
		fmt.Fprintf(&sb, "# TYPE %s histogram\n", pn)
		var cum int64
		for i, c := range h.Buckets {
			cum += c
			if i < HistBuckets {
				fmt.Fprintf(&sb, "%s_bucket{le=\"%d\"} %d\n", pn, BucketBound(i), cum)
			} else {
				fmt.Fprintf(&sb, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum)
			}
		}
		fmt.Fprintf(&sb, "%s_sum %d\n", pn, h.Sum)
		fmt.Fprintf(&sb, "%s_count %d\n", pn, h.Count)
	}
	return sb.String()
}

// ParsePromHist parses FormatPromHist-style text back into histogram
// snapshots keyed by Prometheus metric name (cumulative buckets are
// undone, so ParsePromHist(FormatPromHist(h)) round-trips the per-bucket
// counts). Non-histogram lines are ignored.
func ParsePromHist(s string) map[string]HistogramSnapshot {
	type acc struct {
		cum        []int64
		inf        int64
		sum, count int64
	}
	accs := make(map[string]*acc)
	get := func(name string) *acc {
		a, ok := accs[name]
		if !ok {
			a = &acc{}
			accs[name] = a
		}
		return a
	}
	for _, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		v, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
		if err != nil {
			continue
		}
		switch {
		case strings.Contains(key, "_bucket{le="):
			name, rest, _ := strings.Cut(key, "_bucket{le=\"")
			le := strings.TrimSuffix(rest, "\"}")
			a := get(name)
			if le == "+Inf" {
				a.inf = v
			} else {
				a.cum = append(a.cum, v)
			}
		case strings.HasSuffix(key, "_sum"):
			get(strings.TrimSuffix(key, "_sum")).sum = v
		case strings.HasSuffix(key, "_count"):
			get(strings.TrimSuffix(key, "_count")).count = v
		}
	}
	out := make(map[string]HistogramSnapshot, len(accs))
	for name, a := range accs {
		if len(a.cum) == 0 && a.count == 0 && a.sum == 0 {
			continue
		}
		buckets := make([]int64, len(a.cum)+1)
		var prev int64
		for i, c := range a.cum {
			buckets[i] = c - prev
			prev = c
		}
		buckets[len(a.cum)] = a.inf - prev
		out[name] = HistogramSnapshot{Buckets: buckets, Sum: a.sum, Count: a.count}
	}
	return out
}

// ParseProm parses FormatProm-style text back into metric-name → value
// (comments and malformed lines are ignored). Used by tests and the CI
// smoke check to reconcile /metrics output against a registry snapshot.
func ParseProm(s string) map[string]int64 {
	out := make(map[string]int64)
	for _, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		if v, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64); err == nil {
			out[name] = v
		}
	}
	return out
}

// DecisionCounts extracts the decision.* provenance counters from a
// snapshot — the per-reason execution totals behind a skip rate.
func DecisionCounts(snap map[string]int64) map[string]int64 {
	out := make(map[string]int64)
	for name, v := range snap {
		if strings.HasPrefix(name, "decision.") {
			out[name] = v
		}
	}
	return out
}
