package obs

// Prometheus text-format exporter for a counters snapshot, used by the
// `minibuild serve` /metrics endpoint. Every registry counter is monotonic,
// so everything exports as a prometheus counter; names are the registry
// names with dots replaced by underscores under a "statefulcc_" prefix
// (e.g. pass.runs → statefulcc_pass_runs). Output is sorted by name so two
// exports of the same snapshot are byte-identical.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// PromPrefix is the metric-name namespace of every exported counter.
const PromPrefix = "statefulcc_"

// PromName maps a registry counter name to its Prometheus metric name.
func PromName(name string) string {
	var sb strings.Builder
	sb.WriteString(PromPrefix)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// FormatProm renders a counters snapshot as Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers plus one sample per counter,
// sorted by registry name. The values reconcile exactly with the snapshot.
func FormatProm(snap map[string]int64) string {
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		pn := PromName(name)
		fmt.Fprintf(&sb, "# HELP %s statefulcc obs registry counter %q (see docs/OBSERVABILITY.md).\n", pn, name)
		fmt.Fprintf(&sb, "# TYPE %s counter\n", pn)
		fmt.Fprintf(&sb, "%s %d\n", pn, snap[name])
	}
	return sb.String()
}

// ParseProm parses FormatProm-style text back into metric-name → value
// (comments and malformed lines are ignored). Used by tests and the CI
// smoke check to reconcile /metrics output against a registry snapshot.
func ParseProm(s string) map[string]int64 {
	out := make(map[string]int64)
	for _, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		if v, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64); err == nil {
			out[name] = v
		}
	}
	return out
}

// DecisionCounts extracts the decision.* provenance counters from a
// snapshot — the per-reason execution totals behind a skip rate.
func DecisionCounts(snap map[string]int64) map[string]int64 {
	out := make(map[string]int64)
	for name, v := range snap {
		if strings.HasPrefix(name, "decision.") {
			out[name] = v
		}
	}
	return out
}
