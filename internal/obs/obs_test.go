package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety: every entry point must be a no-op on nil receivers — the
// "observability disabled" state the whole stack relies on.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tr.Emit(Span{Name: "x"})
	if tr.Now() != 0 || tr.Len() != 0 || tr.Spans() != nil {
		t.Error("nil tracer not inert")
	}

	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Load() != 0 {
		t.Error("nil counter not inert")
	}

	var r *Registry
	if r.Counter("x") != nil || r.Snapshot() != nil || r.Names() != nil || r.Pass() != nil {
		t.Error("nil registry not inert")
	}

	var s *Sink
	if s.Trace() != nil || s.PassCtrs() != nil || s.ThreadID() != 0 {
		t.Error("nil sink not inert")
	}
}

// TestCountersConcurrent: concurrent adds through shared and freshly
// resolved counter pointers must not lose updates (run under -race by the
// Makefile ci gate).
func TestCountersConcurrent(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("shared")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				reg.Counter("resolved-each-time").Add(2)
			}
		}()
	}
	wg.Wait()
	snap := reg.Snapshot()
	if snap["shared"] != workers*perWorker {
		t.Errorf("shared = %d, want %d", snap["shared"], workers*perWorker)
	}
	if snap["resolved-each-time"] != 2*workers*perWorker {
		t.Errorf("resolved-each-time = %d, want %d", snap["resolved-each-time"], 2*workers*perWorker)
	}
}

// TestRegistryIdentity: the same name resolves to the same counter.
func TestRegistryIdentity(t *testing.T) {
	reg := NewRegistry()
	a, b := reg.Counter("x"), reg.Counter("x")
	if a != b {
		t.Error("same name resolved to different counters")
	}
	a.Add(3)
	if b.Load() != 3 {
		t.Error("aliased counters disagree")
	}
	names := reg.Names()
	if len(names) != 1 || names[0] != "x" {
		t.Errorf("names = %v", names)
	}
}

// TestTracerConcurrentEmit: spans from many goroutines all land.
func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				start := tr.Now()
				tr.Emit(Span{Name: "s", Cat: CatPass, TID: tid, Start: start, Slot: i})
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != workers*per {
		t.Errorf("spans = %d, want %d", tr.Len(), workers*per)
	}
}

// TestWriteChrome: the export must be a single valid JSON object with one
// complete event per span plus metadata, and counters under otherData.
func TestWriteChrome(t *testing.T) {
	spans := []Span{
		{Name: "build", Cat: CatBuild, TID: 0, Start: 0, Dur: 5e6},
		{Name: "unit main.mc", Cat: CatUnit, Unit: "main.mc", TID: 1, Start: 1e5, Dur: 4e6},
		{Name: "pass:gvn", Cat: CatPass, Unit: "main.mc", TID: 1, Start: 2e5, Dur: 1e6,
			Slot: 8, Runs: 3, Skipped: 2, Dormant: 1, Hashes: 4, HashNS: 1e4, SavedNS: 5e4},
	}
	counters := map[string]int64{CtrPassRuns: 3, CtrPassSkipped: 2}

	var buf bytes.Buffer
	if err := WriteChrome(&buf, spans, counters); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]int64 `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var complete, meta int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
		case "M":
			meta++
		}
	}
	if complete != len(spans) {
		t.Errorf("complete events = %d, want %d", complete, len(spans))
	}
	if meta < 2 { // process_name + at least one thread_name
		t.Errorf("metadata events = %d, want >= 2", meta)
	}
	if doc.OtherData[CtrPassRuns] != 3 {
		t.Errorf("otherData lost counters: %v", doc.OtherData)
	}
	// The pass span keeps its slot detail in args, microseconds in ts/dur.
	for _, ev := range doc.TraceEvents {
		if ev.Name != "pass:gvn" {
			continue
		}
		if ev.Dur != 1e3 { // 1e6 ns = 1e3 us
			t.Errorf("pass dur = %v us, want 1000", ev.Dur)
		}
		if ev.Args["runs"] != float64(3) || ev.Args["skipped"] != float64(2) {
			t.Errorf("pass args = %v", ev.Args)
		}
	}
}

// TestMetricsRoundTrip: FormatMetrics is sorted, fenced, and parseable.
func TestMetricsRoundTrip(t *testing.T) {
	snap := map[string]int64{"b.two": 2, "a.one": 1, "c.three": -3}
	s := FormatMetrics(snap)
	if !strings.HasPrefix(s, MetricsHeader+"\n") || !strings.HasSuffix(s, MetricsFooter+"\n") {
		t.Fatalf("block not fenced:\n%s", s)
	}
	if strings.Index(s, "a.one") > strings.Index(s, "b.two") {
		t.Error("block not sorted")
	}
	back := ParseMetrics("noise before\n" + s + "noise after\n")
	if len(back) != len(snap) {
		t.Fatalf("round trip lost entries: %v", back)
	}
	for k, v := range snap {
		if back[k] != v {
			t.Errorf("%s = %d, want %d", k, back[k], v)
		}
	}
}

// TestDerivedRates: skip rate and utilization formulas.
func TestDerivedRates(t *testing.T) {
	if r := SkipRate(map[string]int64{CtrPassRuns: 3, CtrPassSkipped: 1}); r != 0.25 {
		t.Errorf("SkipRate = %v, want 0.25", r)
	}
	if r := SkipRate(nil); r != 0 {
		t.Errorf("SkipRate(nil) = %v", r)
	}
	if u := Utilization([]int64{50, 100}, 100); u != 0.75 {
		t.Errorf("Utilization = %v, want 0.75", u)
	}
	if u := Utilization(nil, 100); u != 0 {
		t.Errorf("Utilization(nil) = %v", u)
	}
}
