package obs

import (
	"strings"
	"testing"
)

// validTimeline is a well-formed two-worker schedule used as the mutation
// base for the Validate rejection cases and as the Analyze fixture:
//
//	worker 0: a [100,500], b [520,1100]   (b queue-waits 20ns on a)
//	worker 1: c [150,400]                 (50ns lead-in starvation)
//	cache:    d (skip, decision at 50)
//
// CompileStartNS=100, so rebased: a [0,400], b [420,1000], c [50,300].
func validTimeline() *Timeline {
	return &Timeline{
		Workers:        2,
		WallNS:         1200,
		CompileStartNS: 100,
		CompileWallNS:  1000,
		LinkNS:         50,
		Events: []UnitEvent{
			{Unit: "a", Worker: 0, Outcome: OutcomeCompile, EnqueueNS: 100, StartNS: 100, EndNS: 500,
				FrontendNS: 100, PassesNS: 200, CodegenNS: 100},
			{Unit: "b", Worker: 0, Outcome: OutcomeCompile, EnqueueNS: 100, StartNS: 520, EndNS: 1100},
			{Unit: "c", Worker: 1, Outcome: OutcomeCompile, EnqueueNS: 100, StartNS: 150, EndNS: 400},
			{Unit: "d", Worker: -1, Outcome: OutcomeSkip, EnqueueNS: 50, StartNS: 50, EndNS: 50},
		},
	}
}

func TestTimelineValidateAccepts(t *testing.T) {
	tl := validTimeline()
	if err := tl.Validate(); err != nil {
		t.Fatalf("valid timeline rejected: %v", err)
	}
	if got := tl.Compiled(); got != 3 {
		t.Errorf("Compiled() = %d, want 3", got)
	}
}

func TestTimelineValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Timeline)
	}{
		{"zero workers", func(tl *Timeline) { tl.Workers = 0 }},
		{"negative wall", func(tl *Timeline) { tl.WallNS = -1 }},
		{"negative compile start", func(tl *Timeline) { tl.CompileStartNS = -1 }},
		{"negative link", func(tl *Timeline) { tl.LinkNS = -1 }},
		{"events out of unit order", func(tl *Timeline) {
			tl.Events[0], tl.Events[1] = tl.Events[1], tl.Events[0]
		}},
		{"empty unit name", func(tl *Timeline) { tl.Events[0].Unit = "" }},
		{"start before enqueue", func(tl *Timeline) { tl.Events[0].StartNS = tl.Events[0].EnqueueNS - 1 }},
		{"end before start", func(tl *Timeline) { tl.Events[0].EndNS = tl.Events[0].StartNS - 1 }},
		{"negative enqueue", func(tl *Timeline) { tl.Events[3].EnqueueNS = -1 }},
		{"worker out of range", func(tl *Timeline) { tl.Events[0].Worker = 2 }},
		{"skip outcome on a worker", func(tl *Timeline) { tl.Events[0].Outcome = OutcomeSkip }},
		{"end past compile phase", func(tl *Timeline) { tl.Events[1].EndNS = 1101 }},
		{"unscheduled non-skip", func(tl *Timeline) { tl.Events[3].Outcome = OutcomeCompile }},
		{"negative stage time", func(tl *Timeline) { tl.Events[0].PassesNS = -1 }},
	}
	for _, tc := range cases {
		tl := validTimeline()
		tc.mutate(tl)
		if err := tl.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a corrupt timeline", tc.name)
		}
	}
}

func TestAnalyzeCriticalChain(t *testing.T) {
	cp := Analyze(validTimeline())

	// The chain is a → b on worker 0 (b ends last, a is its predecessor).
	if len(cp.Chain) != 2 || cp.Chain[0].Unit != "a" || cp.Chain[1].Unit != "b" {
		t.Fatalf("chain = %+v, want [a b]", cp.Chain)
	}
	if cp.PathNS != 400+580 {
		t.Errorf("PathNS = %d, want 980", cp.PathNS)
	}
	if cp.TotalNS != 1000 {
		t.Errorf("TotalNS = %d, want 1000 (rebased end of b)", cp.TotalNS)
	}
	if cp.TotalNS > cp.CompileWallNS {
		t.Errorf("TotalNS %d exceeds compile wall %d", cp.TotalNS, cp.CompileWallNS)
	}
	if cp.LongestUnit != "b" || cp.LongestUnitNS != 580 {
		t.Errorf("longest unit = %s/%d, want b/580", cp.LongestUnit, cp.LongestUnitNS)
	}
	if cp.TotalNS < cp.LongestUnitNS {
		t.Errorf("TotalNS %d below longest unit %d", cp.TotalNS, cp.LongestUnitNS)
	}

	// b's 20ns gap after a frees worker 0 is queue wait; a has no wait.
	if b := cp.Chain[1]; b.WaitNS != 20 || b.WaitCause != WaitQueue {
		t.Errorf("chain link b wait = %d/%q, want 20/%q", b.WaitNS, b.WaitCause, WaitQueue)
	}
	if a := cp.Chain[0]; a.WaitNS != 0 || a.WaitCause != "" {
		t.Errorf("chain link a wait = %d/%q, want 0/empty", a.WaitNS, a.WaitCause)
	}

	// Whole-schedule wait totals: starts minus rebased enqueues (queue), no
	// dependency-ordered jobs yet, and both workers' idle (20 + 750).
	if cp.QueueWaitNS != 0+420+50 {
		t.Errorf("QueueWaitNS = %d, want 470", cp.QueueWaitNS)
	}
	if cp.DependencyWaitNS != 0 {
		t.Errorf("DependencyWaitNS = %d, want 0", cp.DependencyWaitNS)
	}
	if cp.StarvationNS != 20+750 {
		t.Errorf("StarvationNS = %d, want 770", cp.StarvationNS)
	}

	// Per-worker loads cover every configured slot.
	if len(cp.Workers) != 2 {
		t.Fatalf("worker loads = %d entries, want 2", len(cp.Workers))
	}
	w0, w1 := cp.Workers[0], cp.Workers[1]
	if w0.Units != 2 || w0.BusyNS != 980 || w0.IdleNS != 20 || w0.LongestGapNS != 20 {
		t.Errorf("worker 0 load = %+v", w0)
	}
	if w1.Units != 1 || w1.BusyNS != 250 || w1.IdleNS != 750 || w1.LongestGapNS != 700 {
		t.Errorf("worker 1 load = %+v", w1)
	}

	if s := cp.String(); !strings.Contains(s, "critical path: 2 units") {
		t.Errorf("String() missing chain summary:\n%s", s)
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	a, b := Analyze(validTimeline()), Analyze(validTimeline())
	if a.String() != b.String() {
		t.Error("two analyses of the same timeline differ")
	}
	if len(a.Chain) != len(b.Chain) {
		t.Fatalf("chain lengths differ: %d vs %d", len(a.Chain), len(b.Chain))
	}
	for i := range a.Chain {
		if a.Chain[i].Unit != b.Chain[i].Unit {
			t.Errorf("chain link %d differs: %s vs %s", i, a.Chain[i].Unit, b.Chain[i].Unit)
		}
	}
}

func TestAnalyzeNothingCompiled(t *testing.T) {
	cp := Analyze(&Timeline{
		Workers: 4, WallNS: 100, CompileWallNS: 0, LinkNS: 10,
		Events: []UnitEvent{
			{Unit: "a", Worker: -1, Outcome: OutcomeSkip, EnqueueNS: 5, StartNS: 5, EndNS: 5},
		},
	})
	if len(cp.Chain) != 0 || cp.TotalNS != 0 || cp.PathNS != 0 {
		t.Errorf("fully cached build produced a chain: %+v", cp)
	}
	if len(cp.Workers) != 4 {
		t.Errorf("worker loads = %d entries, want 4 (idle slots included)", len(cp.Workers))
	}
}

func TestClassifyWait(t *testing.T) {
	cases := []struct {
		name                  string
		wait, enqueue, freeAt int64
		hadPred               bool
		want                  string
	}{
		{"no gap", 0, 0, 0, true, ""},
		{"dispatch gap after a predecessor", 20, 0, 400, true, WaitQueue},
		{"lead-in idle before a worker's first unit", 100, 0, 0, false, WaitStarved},
		{"readiness dominates the gap", 100, 80, 0, false, WaitDependency},
		{"readiness sliver must not relabel a long idle", 47_000_000, 7_000, 0, false, WaitStarved},
	}
	for _, tc := range cases {
		if got := classifyWait(tc.wait, tc.enqueue, tc.freeAt, tc.hadPred); got != tc.want {
			t.Errorf("%s: classifyWait = %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestAnalyzeZeroDurationTies(t *testing.T) {
	// Two zero-duration events sharing one timestamp on one worker: the
	// visited map must keep the backward walk terminating instead of
	// bouncing between events that "end at or before" each other's start.
	cp := Analyze(&Timeline{
		Workers: 1, WallNS: 20, CompileStartNS: 0, CompileWallNS: 20,
		Events: []UnitEvent{
			{Unit: "x", Worker: 0, Outcome: OutcomeCompile, EnqueueNS: 10, StartNS: 10, EndNS: 10},
			{Unit: "y", Worker: 0, Outcome: OutcomeCompile, EnqueueNS: 10, StartNS: 10, EndNS: 10},
		},
	})
	if len(cp.Chain) != 2 {
		t.Fatalf("chain = %+v, want both zero-duration units", cp.Chain)
	}
	if cp.PathNS != 0 || cp.TotalNS != 10 {
		t.Errorf("PathNS/TotalNS = %d/%d, want 0/10", cp.PathNS, cp.TotalNS)
	}
}
