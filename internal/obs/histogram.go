package obs

// Fixed log-bucket latency histograms. Counters answer "how much total";
// the build-service item on the ROADMAP needs "how is it distributed" —
// cache-hit latency percentiles in /metrics — which means histograms that
// are as cheap to update under the worker pool as the counters are: one
// atomic add per observation, no locks, no allocation.
//
// Buckets are powers of two from 4096ns (2^12, below any real compile)
// through 2^39ns (~9.2 minutes, above any sane build), plus +Inf. Fixed
// boundaries keep exports byte-deterministic and make two snapshots
// mergeable by addition. Sub-bucket quantile estimates interpolate
// linearly inside the winning bucket — log-spaced buckets bound the error
// at a factor of two, which is plenty for p50/p99 dashboards.

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Standard histogram names (the Hist* mirror of the Ctr* counter names).
const (
	// HistUnitCompileNS is per-unit compile latency (one observation per
	// unit actually compiled).
	HistUnitCompileNS = "unit.compile_ns"
	// HistSkipDecisionNS is the per-unit cache/skip decision latency: the
	// content hash plus (when enabled) the footprint cross-check — the cost
	// of deciding *not* to compile, one observation per unit per build.
	HistSkipDecisionNS = "unit.skip_decision_ns"
	// HistBuildWallNS is whole-build wall time (one observation per
	// successful Build call).
	HistBuildWallNS = "build.wall_ns"
	// HistCASFetchNS is the client-side shared-cache fetch latency: action
	// lookup through verified blob decode, one observation per remote hit
	// attempt that reached the store (hit or verified miss).
	HistCASFetchNS = "cas.fetch_ns"
	// HistCASServeNS is the server-side /cas/ request latency, one
	// observation per request.
	HistCASServeNS = "cas.serve_ns"
	// HistCASNetNS is the per-wire-attempt latency of the shared-cache
	// client — one observation per request that was admitted by the
	// circuit breaker (success or failure), so latency spikes and hedge
	// effectiveness are visible separately from the whole-fetch
	// cas.fetch_ns.
	HistCASNetNS = "cas.net_ns"
)

// Histogram bucket geometry.
const (
	// histMinShift is the exponent of the first bucket boundary (2^12 ns).
	histMinShift = 12
	// HistBuckets is the number of finite buckets; bucket i counts
	// observations ≤ 2^(histMinShift+i) ns. One more implicit bucket
	// catches the rest (+Inf).
	HistBuckets = 28
)

// BucketBound returns finite bucket i's inclusive upper bound in
// nanoseconds.
func BucketBound(i int) int64 { return 1 << (histMinShift + i) }

// Histogram is a fixed-boundary log-bucket histogram. All methods are
// atomic and nil-safe (a nil histogram ignores observations), mirroring
// Counter's contract so instrumented code needs no "is it on" branches.
type Histogram struct {
	counts [HistBuckets + 1]int64
	sum    int64
	n      int64
}

// Observe records one value (negative values clamp to zero; durations
// from a monotonic clock cannot be negative, so a clamp only ever hides a
// recording bug rather than corrupting the distribution).
func (h *Histogram) Observe(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	atomic.AddInt64(&h.counts[bucketIdx(ns)], 1)
	atomic.AddInt64(&h.sum, ns)
	atomic.AddInt64(&h.n, 1)
}

// bucketIdx maps a value to its bucket (the last index is +Inf).
func bucketIdx(ns int64) int {
	for i := 0; i < HistBuckets; i++ {
		if ns <= BucketBound(i) {
			return i
		}
	}
	return HistBuckets
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Buckets = make([]int64, HistBuckets+1)
	for i := range h.counts {
		s.Buckets[i] = atomic.LoadInt64(&h.counts[i])
	}
	s.Sum = atomic.LoadInt64(&h.sum)
	s.Count = atomic.LoadInt64(&h.n)
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram: per-bucket
// (non-cumulative) counts plus the observation sum and count. It is the
// form embedded in benchbaseline JSON and exported to Prometheus.
type HistogramSnapshot struct {
	// Buckets holds HistBuckets+1 per-bucket counts; Buckets[i] counts
	// observations in (BucketBound(i-1), BucketBound(i)], the last entry
	// everything larger.
	Buckets []int64 `json:"buckets"`
	// Sum / Count are the total observed nanoseconds and observations.
	Sum   int64 `json:"sum"`
	Count int64 `json:"count"`
}

// Quantile estimates the q-quantile (0 < q ≤ 1) in nanoseconds by linear
// interpolation within the winning bucket. Returns 0 for an empty
// histogram.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if seen+c >= rank {
			lo := int64(0)
			if i > 0 {
				lo = BucketBound(i - 1)
			}
			hi := lo * 2
			if i == 0 {
				hi = BucketBound(0)
			}
			if i >= HistBuckets {
				// +Inf bucket: report its lower bound (no upper estimate).
				return lo
			}
			frac := float64(rank-seen) / float64(c)
			return lo + int64(frac*float64(hi-lo))
		}
		seen += c
	}
	return BucketBound(HistBuckets - 1)
}

// Registry histograms: resolved once like counters, then updated
// lock-free.

// Histogram returns the named histogram, creating it on first use.
// Nil-safe like Counter.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.h == nil {
		r.h = make(map[string]*Histogram)
	}
	h, ok := r.h[name]
	if !ok {
		h = &Histogram{}
		r.h[name] = h
	}
	return h
}

// HistSnapshot returns a snapshot of every registered histogram.
func (r *Registry) HistSnapshot() map[string]HistogramSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]HistogramSnapshot, len(r.h))
	for name, h := range r.h {
		out[name] = h.Snapshot()
	}
	return out
}

// HistNames returns the registered histogram names, sorted.
func (r *Registry) HistNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.h))
	for name := range r.h {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Merge returns the sum of two snapshots — sound because every histogram
// shares the same fixed bucket boundaries (the property the geometry
// comment above guarantees). Used by `minibuild serve` /metrics to export
// its builder's and its CAS server's registries as one series set.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	if s.Count == 0 && s.Sum == 0 && len(s.Buckets) == 0 {
		return o
	}
	if o.Count == 0 && o.Sum == 0 && len(o.Buckets) == 0 {
		return s
	}
	out := HistogramSnapshot{
		Buckets: make([]int64, HistBuckets+1),
		Sum:     s.Sum + o.Sum,
		Count:   s.Count + o.Count,
	}
	for i := range out.Buckets {
		if i < len(s.Buckets) {
			out.Buckets[i] += s.Buckets[i]
		}
		if i < len(o.Buckets) {
			out.Buckets[i] += o.Buckets[i]
		}
	}
	return out
}

// MergeCounters sums two counter snapshots by name (either may be nil).
func MergeCounters(a, b map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(a)+len(b))
	for k, v := range a {
		out[k] += v
	}
	for k, v := range b {
		out[k] += v
	}
	return out
}

// MergeHistSnapshots sums two histogram-snapshot maps by name.
func MergeHistSnapshots(a, b map[string]HistogramSnapshot) map[string]HistogramSnapshot {
	out := make(map[string]HistogramSnapshot, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = out[k].Merge(v)
	}
	return out
}

// String renders a one-line summary for logs.
func (s HistogramSnapshot) String() string {
	return fmt.Sprintf("n=%d sum=%dns p50=%dns p99=%dns",
		s.Count, s.Sum, s.Quantile(0.50), s.Quantile(0.99))
}
