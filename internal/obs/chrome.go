package obs

// Chrome trace_event exporter. The output is the JSON object format
// understood by chrome://tracing and https://ui.perfetto.dev: complete
// ("ph":"X") events with microsecond timestamps, thread-name metadata so
// workers render as labelled rows, and the counters snapshot under
// otherData for machine consumption.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one trace_event entry.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level document.
type chromeTrace struct {
	TraceEvents     []chromeEvent    `json:"traceEvents"`
	DisplayTimeUnit string           `json:"displayTimeUnit"`
	OtherData       map[string]int64 `json:"otherData,omitempty"`
}

// WriteChrome serializes spans (and an optional counters snapshot) as a
// Chrome-loadable trace. Spans keep their recording order; timestamps are
// converted from epoch-relative nanoseconds to microseconds.
func WriteChrome(w io.Writer, spans []Span, counters map[string]int64) error {
	doc := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(spans)+8),
		DisplayTimeUnit: "ms",
		OtherData:       counters,
	}

	// Thread-name metadata: one row per distinct TID.
	tids := map[int]bool{}
	for _, sp := range spans {
		tids[sp.TID] = true
	}
	order := make([]int, 0, len(tids))
	for tid := range tids {
		order = append(order, tid)
	}
	sort.Ints(order)
	doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "statefulcc"},
	})
	for _, tid := range order {
		name := "build"
		if tid > 0 {
			name = fmt.Sprintf("worker %d", tid-1)
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": name},
		})
	}

	for _, sp := range spans {
		ev := chromeEvent{
			Name: sp.Name,
			Cat:  sp.Cat,
			Ph:   "X",
			TS:   float64(sp.Start) / 1e3,
			Dur:  float64(sp.Dur) / 1e3,
			PID:  1,
			TID:  sp.TID,
		}
		if sp.Unit != "" || sp.Cat == CatPass {
			args := make(map[string]any, 6)
			if sp.Unit != "" {
				args["unit"] = sp.Unit
			}
			if sp.Cat == CatPass {
				args["slot"] = sp.Slot
				args["runs"] = sp.Runs
				args["skipped"] = sp.Skipped
				args["dormant"] = sp.Dormant
				if sp.Hashes > 0 {
					args["hashes"] = sp.Hashes
					args["hash_us"] = float64(sp.HashNS) / 1e3
				}
				if sp.SavedNS > 0 {
					args["saved_us"] = float64(sp.SavedNS) / 1e3
				}
			}
			ev.Args = args
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(&doc)
}
