package obs

import (
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(1)                            // bucket 0 (≤ 4096)
	h.Observe(BucketBound(0))               // still bucket 0 (inclusive bound)
	h.Observe(BucketBound(0) + 1)           // bucket 1
	h.Observe(BucketBound(HistBuckets - 1)) // last finite bucket
	h.Observe(BucketBound(HistBuckets-1) + 1) // +Inf
	h.Observe(-5)                           // clamps to 0 → bucket 0

	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if got := s.Buckets[0]; got != 3 {
		t.Errorf("bucket 0 = %d, want 3", got)
	}
	if got := s.Buckets[1]; got != 1 {
		t.Errorf("bucket 1 = %d, want 1", got)
	}
	if got := s.Buckets[HistBuckets-1]; got != 1 {
		t.Errorf("last finite bucket = %d, want 1", got)
	}
	if got := s.Buckets[HistBuckets]; got != 1 {
		t.Errorf("+Inf bucket = %d, want 1", got)
	}
	wantSum := int64(1) + BucketBound(0) + BucketBound(0) + 1 +
		BucketBound(HistBuckets-1) + BucketBound(HistBuckets-1) + 1
	if s.Sum != wantSum {
		t.Errorf("sum = %d, want %d", s.Sum, wantSum)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(123) // must not panic
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Buckets != nil {
		t.Errorf("nil histogram snapshot not zero: %+v", s)
	}
	var r *Registry
	if r.Histogram("x") != nil {
		t.Error("nil registry returned a histogram")
	}
	if r.HistSnapshot() != nil || r.HistNames() != nil {
		t.Error("nil registry snapshot/names not nil")
	}
}

func TestHistogramQuantile(t *testing.T) {
	var empty HistogramSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty p50 = %d, want 0", q)
	}

	var h Histogram
	// 100 observations all in one bucket: every quantile lands inside it.
	val := BucketBound(5) // upper bound of bucket 5
	for i := 0; i < 100; i++ {
		h.Observe(val)
	}
	s := h.Snapshot()
	lo, hi := BucketBound(4), BucketBound(5)
	for _, q := range []float64{0.1, 0.5, 0.99, 1} {
		got := s.Quantile(q)
		if got < lo || got > hi {
			t.Errorf("p%g = %d outside bucket [%d,%d]", q*100, got, lo, hi)
		}
	}
	if p10, p99 := s.Quantile(0.10), s.Quantile(0.99); p10 > p99 {
		t.Errorf("quantiles not monotonic: p10 %d > p99 %d", p10, p99)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(int64(w*each + i))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*each {
		t.Fatalf("count = %d, want %d", s.Count, workers*each)
	}
	var total int64
	for _, c := range s.Buckets {
		total += c
	}
	if total != s.Count {
		t.Errorf("bucket total %d != count %d", total, s.Count)
	}
}

func TestRegistryHistograms(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("a.ns")
	h2 := r.Histogram("a.ns")
	if h1 != h2 {
		t.Error("same name resolved to different histograms")
	}
	r.Histogram("b.ns").Observe(100)
	h1.Observe(10)
	h1.Observe(20)

	snap := r.HistSnapshot()
	if snap["a.ns"].Count != 2 || snap["b.ns"].Count != 1 {
		t.Errorf("snapshot counts wrong: %+v", snap)
	}
	names := r.HistNames()
	if len(names) != 2 || names[0] != "a.ns" || names[1] != "b.ns" {
		t.Errorf("names = %v, want [a.ns b.ns]", names)
	}
}
