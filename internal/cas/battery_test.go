package cas_test

// The multi-client differential battery — the shared cache's acceptance
// proof. Two independent stateful builders (separate state dirs, separate
// tenants) share one CAS over real HTTP. Client A builds each commit first
// and publishes; client B must then build the same commit with ZERO local
// compiles — everything served from the shared cache or its own warm state
// — and its linked output must be byte-identical (by disassembly) to a
// stateless from-scratch oracle at every commit.
//
// The adversarial case: every blob in the store is poisoned (one byte
// flipped) between A's publish and B's fetch. B must detect every
// corruption (verify-failure counters), recompile locally, and still match
// the oracle — a poisoned blob is never served.

import (
	"net/http/httptest"
	"strings"
	"testing"

	"statefulcc/internal/buildsys"
	"statefulcc/internal/cas"
	"statefulcc/internal/codegen"
	"statefulcc/internal/compiler"
	"statefulcc/internal/obs"
	"statefulcc/internal/project"
	"statefulcc/internal/workload"
)

// batteryHistory builds the snapshot sequence for one profile × stream.
func batteryHistory(p workload.Profile, kind workload.StreamKind, commits int) []project.Snapshot {
	base := workload.Generate(p)
	hist := workload.GenerateHistoryStream(base, p.Seed*13, commits, workload.DefaultCommitOptions(), kind)
	return append([]project.Snapshot{base}, hist.Commits...)
}

// statelessDis is the oracle: a from-scratch stateless build's disassembly.
func statelessDis(t *testing.T, snap project.Snapshot) string {
	t.Helper()
	b, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateless})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Build(snap)
	if err != nil {
		t.Fatal(err)
	}
	return codegen.DisassembleProgram(rep.Program)
}

// casClient builds a stateful builder wired to the shared cache at url
// under its own tenant namespace and its own private state directory.
func casClient(t *testing.T, url, tenant string) *buildsys.Builder {
	t.Helper()
	b, err := buildsys.NewBuilder(buildsys.Options{
		Mode:     compiler.ModeStateful,
		StateDir: t.TempDir(),
		CAS:      cas.NewHTTPCAS(url, tenant),
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestTwoClientBattery(t *testing.T) {
	profiles := workload.QuickSuite()
	if !testing.Short() {
		profiles = append(profiles, workload.StandardSuite()[3]) // netstack
	}
	streams := []workload.StreamKind{
		workload.StreamDefault, workload.StreamRenameWave, workload.StreamInterfaceChurn,
	}
	for _, p := range profiles {
		for _, kind := range streams {
			p, kind := p, kind
			t.Run(p.Name+"/"+kind.String(), func(t *testing.T) {
				t.Parallel()
				snaps := batteryHistory(p, kind, 4)

				reg := obs.NewRegistry()
				srv := cas.NewServer(cas.NewMemCAS(0), cas.ServerOptions{Metrics: reg})
				hs := httptest.NewServer(srv.Handler())
				defer hs.Close()

				clientA := casClient(t, hs.URL, "client-a")
				clientB := casClient(t, hs.URL, "client-b")

				for i, snap := range snaps {
					oracle := statelessDis(t, snap)
					repA, err := clientA.Build(snap)
					if err != nil {
						t.Fatalf("commit %d: client A: %v", i, err)
					}
					if got := codegen.DisassembleProgram(repA.Program); got != oracle {
						t.Fatalf("commit %d: client A's output diverged from the stateless oracle", i)
					}
					repB, err := clientB.Build(snap)
					if err != nil {
						t.Fatalf("commit %d: client B: %v", i, err)
					}
					if got := codegen.DisassembleProgram(repB.Program); got != oracle {
						t.Fatalf("commit %d: client B's output diverged from the stateless oracle", i)
					}
					// A published every unit it compiled before B started, so
					// B never compiles: every local miss is a verified remote
					// hit. This is the cross-client reuse claim, per commit.
					if repB.UnitsCompiled != 0 {
						t.Fatalf("commit %d: client B compiled %d units despite A publishing first (remote %d, cached %d)",
							i, repB.UnitsCompiled, repB.UnitsRemote, repB.UnitsCached)
					}
					if i == 0 && repB.UnitsRemote != len(snap) {
						t.Fatalf("cold client B served %d of %d units remotely", repB.UnitsRemote, len(snap))
					}
					for _, w := range repB.Warnings {
						if strings.Contains(w, "cas:") {
							t.Fatalf("commit %d: clean battery run produced a cas warning: %s", i, w)
						}
					}
				}

				// Client-side and server-side books agree on a healthy run.
				mB := clientB.Metrics()
				if mB[obs.CtrCASHits] == 0 {
					t.Fatal("client B recorded zero shared-cache hits across the battery")
				}
				if mB[obs.CtrCASVerifyFailed] != 0 {
					t.Fatalf("client B recorded %d verify failures on an unpoisoned store", mB[obs.CtrCASVerifyFailed])
				}
				ms := reg.Snapshot()
				if ms[obs.CtrCASVerifyFailed] != 0 {
					t.Fatalf("server recorded %d verify failures on an unpoisoned store", ms[obs.CtrCASVerifyFailed])
				}
				if ms[obs.CtrCASPublished] == 0 {
					t.Fatal("server recorded zero publishes; A never shared anything")
				}
			})
		}
	}
}

// TestPoisonedBlobNeverServed flips one byte of EVERY stored blob between
// A's publish and B's build. B must reject every blob, recompile all units
// locally, and still match the oracle exactly.
func TestPoisonedBlobNeverServed(t *testing.T) {
	p := workload.QuickSuite()[0]
	snap := workload.Generate(p)
	oracle := statelessDis(t, snap)

	mem := cas.NewMemCAS(0)
	srv := cas.NewServer(mem, cas.ServerOptions{Metrics: obs.NewRegistry()})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	// Stateless publishers/consumers: exactly one object blob per unit, no
	// state blobs, so the bookkeeping below is exact.
	a, err := buildsys.NewBuilder(buildsys.Options{
		Mode: compiler.ModeStateless, CAS: cas.NewHTTPCAS(hs.URL, "client-a"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Build(snap); err != nil {
		t.Fatal(err)
	}
	keys := mem.Keys()
	if len(keys) != len(snap) {
		t.Fatalf("store holds %d blobs after publishing %d units", len(keys), len(snap))
	}
	for _, k := range keys {
		if !mem.Tamper(k, func(data []byte) { data[len(data)/2] ^= 0x40 }) {
			t.Fatalf("blob %s vanished before tampering", k)
		}
	}

	b, err := buildsys.NewBuilder(buildsys.Options{
		Mode: compiler.ModeStateless, CAS: cas.NewHTTPCAS(hs.URL, "client-b"),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Build(snap)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UnitsRemote != 0 {
		t.Fatalf("%d poisoned units served as remote hits", rep.UnitsRemote)
	}
	if rep.UnitsCompiled != len(snap) {
		t.Fatalf("client B compiled %d of %d units; the rest came from a poisoned store", rep.UnitsCompiled, len(snap))
	}
	if got := codegen.DisassembleProgram(rep.Program); got != oracle {
		t.Fatal("client B's output diverged from the oracle after rejecting the poisoned store")
	}
	m := b.Metrics()
	if m[obs.CtrCASVerifyFailed] < int64(len(snap)) {
		t.Fatalf("client B detected %d poisoned blobs, want at least %d", m[obs.CtrCASVerifyFailed], len(snap))
	}
	warned := false
	for _, w := range rep.Warnings {
		if strings.Contains(w, "poisoned blob rejected") {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("no poisoned-blob warning surfaced: %v", rep.Warnings)
	}

	// The store self-healed (poisoned blobs dropped on first verify) and B
	// republished honest objects: a third client now gets clean remote hits.
	c, err := buildsys.NewBuilder(buildsys.Options{
		Mode: compiler.ModeStateless, CAS: cas.NewHTTPCAS(hs.URL, "client-c"),
	})
	if err != nil {
		t.Fatal(err)
	}
	repC, err := c.Build(snap)
	if err != nil {
		t.Fatal(err)
	}
	if repC.UnitsRemote != len(snap) {
		t.Fatalf("after healing, client C got %d of %d units remotely", repC.UnitsRemote, len(snap))
	}
	if got := codegen.DisassembleProgram(repC.Program); got != oracle {
		t.Fatal("client C's output diverged from the oracle")
	}
}
