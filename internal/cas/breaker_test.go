package cas_test

// Circuit-breaker state-machine proofs, all under an injected clock so
// every transition is deterministic: consecutive-failure and windowed
// error-rate trips, cooldown-gated half-open probes (exactly one in
// flight), probe-driven recovery and re-opening, and the transition
// counters the dashboards read.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"statefulcc/internal/cas"
	"statefulcc/internal/obs"
)

// The tests reuse quota_test.go's fakeClock as the injected time source.

// transitionLog records breaker transitions in order.
type transitionLog struct {
	mu  sync.Mutex
	log []string
}

func (l *transitionLog) hook(from, to cas.BreakerState) {
	l.mu.Lock()
	l.log = append(l.log, from.String()+"->"+to.String())
	l.mu.Unlock()
}

func (l *transitionLog) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.log...)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBreakerLifecycle(t *testing.T) {
	clock := newFakeClock()
	var tl transitionLog
	reg := obs.NewRegistry()
	b := cas.NewBreaker(cas.BreakerOptions{
		FailureThreshold: 3,
		Cooldown:         time.Second,
		Now:              clock.Now,
		OnTransition:     tl.hook,
	})
	b.SetMetrics(reg)

	// Closed: admits everything; failures below the threshold stay closed.
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker refused request %d: %v", i, err)
		}
		b.Report(true)
	}
	if got := b.State(); got != cas.BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", got)
	}

	// Third consecutive failure trips it.
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Report(true)
	if got := b.State(); got != cas.BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", got)
	}
	if err := b.Allow(); !errors.Is(err, cas.ErrUnavailable) {
		t.Fatalf("open breaker admitted a request (err=%v)", err)
	}

	// Cooldown elapses: exactly one probe is admitted; concurrent requests
	// keep fast-failing until the probe settles.
	clock.Advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("post-cooldown probe refused: %v", err)
	}
	if got := b.State(); got != cas.BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", got)
	}
	if err := b.Allow(); !errors.Is(err, cas.ErrUnavailable) {
		t.Fatalf("second request admitted while probe in flight (err=%v)", err)
	}

	// Probe succeeds: recovered, closed, counters settled.
	b.Report(false)
	if got := b.State(); got != cas.BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("recovered breaker refused a request: %v", err)
	}
	b.Report(false)

	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	if got := tl.snapshot(); !equalStrings(got, want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	m := reg.Snapshot()
	if m[obs.CtrCASBreakerTrips] != 1 || m[obs.CtrCASBreakerProbes] != 1 || m[obs.CtrCASBreakerRecovered] != 1 {
		t.Fatalf("counters trips/probes/recovered = %d/%d/%d, want 1/1/1",
			m[obs.CtrCASBreakerTrips], m[obs.CtrCASBreakerProbes], m[obs.CtrCASBreakerRecovered])
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clock := newFakeClock()
	var tl transitionLog
	reg := obs.NewRegistry()
	b := cas.NewBreaker(cas.BreakerOptions{
		FailureThreshold: 2,
		Cooldown:         time.Second,
		Now:              clock.Now,
		OnTransition:     tl.hook,
	})
	b.SetMetrics(reg)

	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Report(true)
	}
	clock.Advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	b.Report(true) // probe fails: back to open, cooldown re-arms
	if got := b.State(); got != cas.BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if err := b.Allow(); !errors.Is(err, cas.ErrUnavailable) {
		t.Fatal("re-opened breaker admitted a request before the new cooldown")
	}

	// The next cooldown admits another probe; success recovers.
	clock.Advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	b.Report(false)
	if got := b.State(); got != cas.BreakerClosed {
		t.Fatalf("state after recovery = %v, want closed", got)
	}
	want := []string{"closed->open", "open->half-open", "half-open->open", "open->half-open", "half-open->closed"}
	if got := tl.snapshot(); !equalStrings(got, want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	m := reg.Snapshot()
	if m[obs.CtrCASBreakerTrips] != 2 || m[obs.CtrCASBreakerProbes] != 2 || m[obs.CtrCASBreakerRecovered] != 1 {
		t.Fatalf("counters trips/probes/recovered = %d/%d/%d, want 2/2/1",
			m[obs.CtrCASBreakerTrips], m[obs.CtrCASBreakerProbes], m[obs.CtrCASBreakerRecovered])
	}
}

// TestBreakerRateTrip proves the windowed error-rate trip: failures that
// never run 4 consecutive still open the breaker once the full window's
// failure fraction reaches the threshold.
func TestBreakerRateTrip(t *testing.T) {
	clock := newFakeClock()
	b := cas.NewBreaker(cas.BreakerOptions{
		FailureThreshold: 100, // out of reach: only the rate can trip
		WindowSize:       8,
		RateThreshold:    0.5,
		Now:              clock.Now,
	})
	// Alternate failure/success: never two consecutive failures, but the
	// full window holds 4/8 = 50% failures on the 8th report.
	for i := 0; i < 8; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("request %d refused before the window filled: %v", i, err)
		}
		b.Report(i%2 == 0)
	}
	if got := b.State(); got != cas.BreakerOpen {
		t.Fatalf("state after 50%% windowed failures = %v, want open", got)
	}
}

// TestBreakerRateNeedsFullWindow: a young breaker with one early failure
// must not trip on rate (1/1 = 100% but the window is not full).
func TestBreakerRateNeedsFullWindow(t *testing.T) {
	b := cas.NewBreaker(cas.BreakerOptions{FailureThreshold: 100, WindowSize: 8, Now: newFakeClock().Now})
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Report(true)
	if got := b.State(); got != cas.BreakerClosed {
		t.Fatalf("one failure on an unfilled window tripped the breaker (state %v)", got)
	}
}

// TestBreakerNilSafe: a nil breaker admits everything (the NoBreaker
// configuration costs no branches at call sites).
func TestBreakerNilSafe(t *testing.T) {
	var b *cas.Breaker
	if err := b.Allow(); err != nil {
		t.Fatalf("nil breaker refused: %v", err)
	}
	b.Report(true)
	b.SetMetrics(obs.NewRegistry())
	if got := b.State(); got != cas.BreakerClosed {
		t.Fatalf("nil breaker state = %v, want closed", got)
	}
}
