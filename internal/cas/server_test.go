package cas

// White-box coalescing tests: these need the flight table to know when
// every waiter is actually parked, which makes the 1-leader/15-waiter
// split deterministic instead of a race against the publish.

import (
	"testing"
	"time"

	"statefulcc/internal/obs"
)

// waitForWaiters polls until the action's flight has n parked waiters.
func waitForWaiters(t *testing.T, s *Server, action Key, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		got := 0
		if f, ok := s.flights[action]; ok {
			got = f.waiters
		}
		s.mu.Unlock()
		if got == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d waiters parked on the flight", got, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLeaseCoalescesDeterministically pins the exact split the issue asks
// for: 16 concurrent leasers of one action elect exactly one leader; after
// the leader publishes, all 15 waiters wake with the published blob and
// cas.coalesced reads exactly 15.
func TestLeaseCoalescesDeterministically(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewServer(NewMemCAS(0), ServerOptions{Metrics: reg})
	action := Sum([]byte("the contended action"))
	data := EncodeBlob(KindObject, action, "u.mc", []byte("payload"))
	blobKey := Sum(data)

	lr := s.Lease(nil, action)
	if !lr.Leader {
		t.Fatalf("first leaser is not the leader: %+v", lr)
	}

	const waiters = 15
	results := make(chan LeaseResult, waiters)
	for i := 0; i < waiters; i++ {
		go func() { results <- s.Lease(nil, action) }()
	}
	waitForWaiters(t, s, action, waiters)

	// Leader compiles and publishes: blob first, then the action entry that
	// wakes everyone.
	if err := s.Put("fleet", blobKey, data); err != nil {
		t.Fatal(err)
	}
	if err := s.ActionPut(action, blobKey); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < waiters; i++ {
		r := <-results
		if !r.Found || r.Blob != blobKey {
			t.Fatalf("waiter %d got %+v, want the published blob", i, r)
		}
	}
	m := reg.Snapshot()
	if m[obs.CtrCASCoalesced] != waiters {
		t.Fatalf("%s = %d, want exactly %d", obs.CtrCASCoalesced, m[obs.CtrCASCoalesced], waiters)
	}
	if m[obs.CtrCASPublished] != 1 {
		t.Fatalf("%s = %d, want exactly 1 (one compile)", obs.CtrCASPublished, m[obs.CtrCASPublished])
	}
	// A late leaser after publish is a plain hit, not a coalesce.
	if r := s.Lease(nil, action); !r.Found || r.Blob != blobKey {
		t.Fatalf("post-publish lease = %+v, want plain hit", r)
	}
	if got := reg.Snapshot()[obs.CtrCASCoalesced]; got != waiters {
		t.Fatalf("late hit bumped coalesced to %d", got)
	}
}

// TestLeaseAbandonWakesWaiters: an abandoning leader releases every waiter
// with an empty result (compile locally), never a blob.
func TestLeaseAbandonWakesWaiters(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewServer(NewMemCAS(0), ServerOptions{Metrics: reg})
	action := Sum([]byte("abandoned action"))
	if lr := s.Lease(nil, action); !lr.Leader {
		t.Fatalf("first leaser is not the leader: %+v", lr)
	}
	const waiters = 4
	results := make(chan LeaseResult, waiters)
	for i := 0; i < waiters; i++ {
		go func() { results <- s.Lease(nil, action) }()
	}
	waitForWaiters(t, s, action, waiters)
	s.Abandon(action)
	for i := 0; i < waiters; i++ {
		if r := <-results; r.Leader || r.Found {
			t.Fatalf("waiter %d woke with %+v after abandon, want empty (compile locally)", i, r)
		}
	}
	if got := reg.Snapshot()[obs.CtrCASCoalesced]; got != 0 {
		t.Fatalf("abandon counted %d coalesced fetches", got)
	}
	// The flight is gone: the next leaser leads again.
	if lr := s.Lease(nil, action); !lr.Leader {
		t.Fatalf("post-abandon leaser is not the leader: %+v", lr)
	}
}

// TestLeaseGraceExpiry: a waiter on a dead leader times out with an empty
// result instead of blocking forever.
func TestLeaseGraceExpiry(t *testing.T) {
	s := NewServer(NewMemCAS(0), ServerOptions{LeaseGrace: 20 * time.Millisecond})
	action := Sum([]byte("slow leader"))
	if lr := s.Lease(nil, action); !lr.Leader {
		t.Fatal("first leaser is not the leader")
	}
	start := time.Now()
	r := s.Lease(nil, action)
	if r.Leader || r.Found {
		t.Fatalf("waiter on a dead leader got %+v, want empty after grace", r)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("grace expiry took far longer than the configured grace")
	}
}

// TestLeaseStaleFlightTakeover: once a flight is older than the grace, the
// next leaser replaces the dead leader instead of waiting on it.
func TestLeaseStaleFlightTakeover(t *testing.T) {
	now := time.Unix(1000, 0)
	s := NewServer(NewMemCAS(0), ServerOptions{
		LeaseGrace: time.Minute,
		Now:        func() time.Time { return now },
	})
	action := Sum([]byte("stale flight"))
	if lr := s.Lease(nil, action); !lr.Leader {
		t.Fatal("first leaser is not the leader")
	}
	now = now.Add(2 * time.Minute) // leader has been dead past the grace
	if lr := s.Lease(nil, action); !lr.Leader {
		t.Fatalf("leaser after a stale flight got %+v, want leadership takeover", lr)
	}
}

// TestLeaseCancel: a cancelled waiter returns empty immediately.
func TestLeaseCancel(t *testing.T) {
	s := NewServer(NewMemCAS(0), ServerOptions{LeaseGrace: time.Hour})
	action := Sum([]byte("cancelled wait"))
	if lr := s.Lease(nil, action); !lr.Leader {
		t.Fatal("first leaser is not the leader")
	}
	cancel := make(chan struct{})
	done := make(chan LeaseResult, 1)
	go func() { done <- s.Lease(cancel, action) }()
	waitForWaiters(t, s, action, 1)
	close(cancel)
	select {
	case r := <-done:
		if r.Leader || r.Found {
			t.Fatalf("cancelled waiter got %+v, want empty", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter did not return")
	}
}
