package cas

// The per-backend circuit breaker (docs/ROBUSTNESS.md, "Network
// adversity"). A flaky or dead cache backend must cost a build at most a
// fast, counted fallback to local compilation — never a retry storm and
// never a per-unit wait on a connection that will not answer. The state
// machine is the classic three-state breaker:
//
//	closed ──(consecutive failures ≥ FailureThreshold, or the rolling
//	          window's error rate ≥ RateThreshold)──▶ open
//	open ──(Cooldown elapsed)──▶ half-open (admits exactly one probe)
//	half-open ──probe succeeds──▶ closed      (backend re-engaged)
//	half-open ──probe fails────▶ open         (cooldown re-arms)
//
// Only transport-level failures count against the breaker: a 404 or a
// verify refusal is a healthy backend delivering a verdict. All
// transitions are counted (cas.breaker_*) and surfaced through /metrics,
// /dash, and the flight recorder; OnTransition gives tests a
// deterministic observation point. Time is injectable, so the lifecycle
// proofs run under a fake clock.

import (
	"fmt"
	"sync"
	"time"

	"statefulcc/internal/obs"
)

// BreakerState is the breaker's position in the state machine.
type BreakerState int

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String names the state for logs and metrics rows.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// BreakerOptions tunes the state machine; zero values pick the defaults.
type BreakerOptions struct {
	// FailureThreshold trips the breaker after this many consecutive
	// transport failures (default 5).
	FailureThreshold int
	// WindowSize is the rolling outcome window the error-rate trip
	// evaluates over (default 16); the rate only trips on a full window,
	// so a single early failure cannot open a fresh breaker.
	WindowSize int
	// RateThreshold trips the breaker when the full window's failure
	// fraction reaches it (default 0.5).
	RateThreshold float64
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe (default 2s).
	Cooldown time.Duration
	// Now is the clock (tests inject a fake one); default time.Now.
	Now func() time.Time
	// OnTransition observes every state change (called outside the
	// breaker lock, in transition order).
	OnTransition func(from, to BreakerState)
}

// Breaker is the per-backend circuit breaker. All methods are safe for
// concurrent use and safe on a nil receiver (a nil breaker admits
// everything), so an unbreakered client costs nothing.
type Breaker struct {
	opts BreakerOptions

	mu       sync.Mutex
	state    BreakerState
	consec   int    // consecutive transport failures while closed
	window   []bool // rolling outcomes; true = failure
	wfilled  int
	wpos     int
	wfails   int
	openedAt time.Time
	probing  bool // a half-open probe is in flight

	trips, probes, recovered *obs.Counter
}

// NewBreaker builds a closed breaker.
func NewBreaker(opts BreakerOptions) *Breaker {
	if opts.FailureThreshold <= 0 {
		opts.FailureThreshold = 5
	}
	if opts.WindowSize <= 0 {
		opts.WindowSize = 16
	}
	if opts.RateThreshold <= 0 {
		opts.RateThreshold = 0.5
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 2 * time.Second
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Breaker{opts: opts, window: make([]bool, opts.WindowSize)}
}

// SetMetrics binds the breaker's transition counters to a registry (the
// builder's, so breaker activity lands in /metrics and the flight
// recorder). Call before concurrent use.
func (b *Breaker) SetMetrics(reg *obs.Registry) {
	if b == nil || reg == nil {
		return
	}
	b.trips = reg.Counter(obs.CtrCASBreakerTrips)
	b.probes = reg.Counter(obs.CtrCASBreakerProbes)
	b.recovered = reg.Counter(obs.CtrCASBreakerRecovered)
}

// State reports the current state (BreakerClosed on nil).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow admits or fast-fails one request. A nil error means proceed (and
// the caller must Report the outcome); ErrUnavailable means the breaker
// is open — fail fast, compile locally, and charge cas.breaker_open.
// While open, the first Allow after the cooldown transitions to
// half-open and is admitted as the single probe; every other request
// keeps fast-failing until the probe reports.
func (b *Breaker) Allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	switch b.state {
	case BreakerClosed:
		b.mu.Unlock()
		return nil
	case BreakerOpen:
		if b.opts.Now().Sub(b.openedAt) < b.opts.Cooldown {
			b.mu.Unlock()
			return fmt.Errorf("circuit open: %w", ErrUnavailable)
		}
		b.state = BreakerHalfOpen
		b.probing = true
		b.probes.Inc()
		b.mu.Unlock()
		b.notify(BreakerOpen, BreakerHalfOpen)
		return nil
	default: // half-open
		if b.probing {
			b.mu.Unlock()
			return fmt.Errorf("circuit half-open, probe in flight: %w", ErrUnavailable)
		}
		// A previous probe settled without transitioning (impossible in
		// the current machine, but admit another probe rather than wedge).
		b.probing = true
		b.probes.Inc()
		b.mu.Unlock()
		return nil
	}
}

// Report settles one admitted request: failure true means a
// transport-level failure (connection error, 5xx, blown deadline), false
// a healthy exchange — including service verdicts like 404.
func (b *Breaker) Report(failure bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	switch b.state {
	case BreakerHalfOpen:
		b.probing = false
		if failure {
			b.state = BreakerOpen
			b.openedAt = b.opts.Now()
			b.trips.Inc()
			b.mu.Unlock()
			b.notify(BreakerHalfOpen, BreakerOpen)
			return
		}
		b.state = BreakerClosed
		b.consec = 0
		b.resetWindowLocked()
		b.recovered.Inc()
		b.mu.Unlock()
		b.notify(BreakerHalfOpen, BreakerClosed)
		return
	case BreakerClosed:
		b.observeLocked(failure)
		if failure {
			b.consec++
		} else {
			b.consec = 0
		}
		if b.consec >= b.opts.FailureThreshold ||
			(b.wfilled == len(b.window) &&
				float64(b.wfails)/float64(len(b.window)) >= b.opts.RateThreshold) {
			b.state = BreakerOpen
			b.openedAt = b.opts.Now()
			b.trips.Inc()
			b.mu.Unlock()
			b.notify(BreakerClosed, BreakerOpen)
			return
		}
	case BreakerOpen:
		// A straggler admitted before the trip settled late; nothing to
		// update — the cooldown owns recovery now.
	}
	b.mu.Unlock()
}

// observeLocked folds one outcome into the rolling window.
func (b *Breaker) observeLocked(failure bool) {
	if b.wfilled == len(b.window) && b.window[b.wpos] {
		b.wfails--
	}
	b.window[b.wpos] = failure
	if failure {
		b.wfails++
	}
	b.wpos = (b.wpos + 1) % len(b.window)
	if b.wfilled < len(b.window) {
		b.wfilled++
	}
}

func (b *Breaker) resetWindowLocked() {
	for i := range b.window {
		b.window[i] = false
	}
	b.wfilled, b.wpos, b.wfails = 0, 0, 0
}

func (b *Breaker) notify(from, to BreakerState) {
	if b.opts.OnTransition != nil {
		b.opts.OnTransition(from, to)
	}
}
