package cas

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"statefulcc/internal/obs"
)

// HTTPCAS is the client for a serve instance's /cas/ endpoints. It
// implements Store plus Leaser (coalescing) and — like every backend —
// verifies blob bytes against their key on every read, so a server (or a
// middlebox) handing back wrong bytes is a counted miss, never a wrong
// hit.
//
// The network-adversity contract (docs/ROBUSTNESS.md):
//
//   - Every operation runs under a deadline budget (FetchBudget for
//     blob/action traffic, LeaseBudget for coalescing long-polls), so an
//     indefinitely stalled connection costs at most the budget, never a
//     hung build.
//   - Retries follow a strict taxonomy: only transport failures, mid-body
//     read errors, 5xx responses, and blown deadlines re-send. Every
//     service verdict — 404 miss, 410 verify refusal, 507 quota, any
//     other 4xx, and locally detected verify/malformed payloads — is
//     final on the first answer and never burns the retry budget.
//   - A per-backend circuit breaker fronts every wire attempt: enough
//     transport failures open it, open requests fast-fail with
//     ErrUnavailable (cas.breaker_open) instead of waiting on a dead
//     backend, and half-open probes re-engage a recovered server without
//     operator action.
//   - Optional hedged seconds (HedgeAfter > 0) race a duplicate GET/HEAD
//     against tail-latency spikes; the first response wins and the loser
//     is cancelled. Hedging is restricted to idempotent reads.
type HTTPCAS struct {
	base    string // "http://host:port", no trailing slash
	tenant  string
	client  *http.Client
	opts    HTTPOptions
	breaker *Breaker

	netErrors, retriesCtr, hedged, hedgeWins, breakerOpen *obs.Counter
	histNet                                               *obs.Histogram
}

// HTTPOptions tunes the client; zero values pick the defaults.
type HTTPOptions struct {
	// Transport is the http.RoundTripper to use (tests wrap it in a
	// FaultTransport); nil means http.DefaultTransport.
	Transport http.RoundTripper
	// Retries is the number of re-sends beyond the first attempt for
	// retryable failures (default 2).
	Retries int
	// Backoff is the first retry delay, doubling per attempt (default
	// 25ms).
	Backoff time.Duration
	// FetchBudget bounds one blob/action operation end to end, retries
	// included (default 10s). A stalled connection costs at most this.
	FetchBudget time.Duration
	// LeaseBudget bounds one coalescing long-poll (default 30s). It must
	// exceed the server's lease grace, or waiters would give up before
	// the server re-elects a leader.
	LeaseBudget time.Duration
	// HedgeAfter, when positive, issues a hedged duplicate GET/HEAD if
	// the first attempt has not answered within it (default off).
	HedgeAfter time.Duration
	// NoBreaker disables the circuit breaker (tests that want raw retry
	// behaviour).
	NoBreaker bool
	// Breaker tunes the circuit breaker (fake clocks, transition hooks).
	Breaker BreakerOptions
}

const (
	defaultFetchBudget = 10 * time.Second
	defaultLeaseBudget = 30 * time.Second
)

// NewHTTPCAS builds a client for base (e.g. "http://127.0.0.1:7777") under
// the given tenant namespace ("" means "default") with default options —
// breaker on, budgets on, hedging off.
func NewHTTPCAS(base, tenant string) *HTTPCAS {
	return NewHTTPCASOpts(base, tenant, HTTPOptions{})
}

// NewHTTPCASOpts is NewHTTPCAS with explicit options.
func NewHTTPCASOpts(base, tenant string, opts HTTPOptions) *HTTPCAS {
	if tenant == "" {
		tenant = "default"
	}
	if opts.Retries <= 0 {
		opts.Retries = 2
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 25 * time.Millisecond
	}
	if opts.FetchBudget <= 0 {
		opts.FetchBudget = defaultFetchBudget
	}
	if opts.LeaseBudget <= 0 {
		opts.LeaseBudget = defaultLeaseBudget
	}
	h := &HTTPCAS{
		base:   strings.TrimRight(base, "/"),
		tenant: tenant,
		client: &http.Client{Transport: opts.Transport},
		opts:   opts,
	}
	if !opts.NoBreaker {
		h.breaker = NewBreaker(opts.Breaker)
	}
	return h
}

// SetMetrics binds the client's counters and the per-attempt latency
// histogram to a registry (the builder detects this interface and passes
// its own, so client-side network adversity lands in /metrics and the
// flight recorder). Call before concurrent use.
func (h *HTTPCAS) SetMetrics(reg *obs.Registry) {
	if h == nil || reg == nil {
		return
	}
	h.netErrors = reg.Counter(obs.CtrCASNetErrors)
	h.retriesCtr = reg.Counter(obs.CtrCASRetries)
	h.hedged = reg.Counter(obs.CtrCASHedged)
	h.hedgeWins = reg.Counter(obs.CtrCASHedgeWins)
	h.breakerOpen = reg.Counter(obs.CtrCASBreakerOpen)
	h.histNet = reg.Histogram(obs.HistCASNetNS)
	h.breaker.SetMetrics(reg)
}

// BreakerState reports the circuit breaker's state (BreakerClosed when
// the breaker is disabled).
func (h *HTTPCAS) BreakerState() BreakerState { return h.breaker.State() }

// Retryable reports whether err is worth a re-send under the strict
// taxonomy: transport failures, mid-body read errors, 5xx responses, and
// blown deadlines are; every service verdict (the package sentinels, any
// 4xx status) and caller cancellation are final.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrUnavailable) || errors.Is(err, ErrNotFound) ||
		errors.Is(err, ErrVerify) || errors.Is(err, ErrQuota) {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	var se *statusErr
	if errors.As(err, &se) {
		return se.code >= 500
	}
	return true
}

// isNetFailure reports whether err is a transport-level failure — the
// kind that counts against the circuit breaker and cas.net_error. Service
// verdicts (any status below 500) and caller cancellation are not
// failures: the backend answered, or the caller walked away.
func isNetFailure(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	var se *statusErr
	if errors.As(err, &se) {
		return se.code >= 500
	}
	return true
}

// statusErr carries a non-2xx wire status so do() can map it exactly once.
type statusErr struct {
	code int
	body string
}

func (e *statusErr) Error() string {
	return fmt.Sprintf("cas: http %d: %s", e.code, strings.TrimSpace(e.body))
}

// do issues one operation under its deadline budget, re-sending only
// retryable failures with doubling backoff. The request body is a byte
// slice so retries can replay it.
func (h *HTTPCAS) do(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	budget := h.opts.FetchBudget
	if strings.HasPrefix(path, "/cas/lease/") && method == http.MethodPost {
		budget = h.opts.LeaseBudget
	}
	bctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	var lastErr error
	for attempt := 0; ; attempt++ {
		data, err := h.roundTrip(bctx, method, path, body, attempt == 0)
		if err == nil {
			return data, nil
		}
		lastErr = err
		if !Retryable(err) || attempt >= h.opts.Retries || bctx.Err() != nil {
			return nil, lastErr
		}
		h.retriesCtr.Inc()
		select {
		case <-time.After(h.opts.Backoff << attempt):
		case <-bctx.Done():
			return nil, lastErr
		}
	}
}

// roundTrip is one breaker-gated exchange (possibly hedged). The breaker
// sees exactly one verdict per admitted exchange.
func (h *HTTPCAS) roundTrip(ctx context.Context, method, path string, body []byte, first bool) ([]byte, error) {
	if err := h.breaker.Allow(); err != nil {
		h.breakerOpen.Inc()
		return nil, err
	}
	data, err := h.exchange(ctx, method, path, body, first)
	h.breaker.Report(isNetFailure(err))
	return data, err
}

// exchange runs the wire attempt, racing a hedged duplicate for
// idempotent reads when configured. Hedging only applies to the first
// attempt of an operation: a retry already is a second request.
func (h *HTTPCAS) exchange(ctx context.Context, method, path string, body []byte, first bool) ([]byte, error) {
	hedgeable := first && h.opts.HedgeAfter > 0 &&
		(method == http.MethodGet || method == http.MethodHead)
	if !hedgeable {
		return h.attempt(ctx, method, path, body)
	}
	type result struct {
		data  []byte
		err   error
		hedge bool
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan result, 2)
	go func() {
		d, e := h.attempt(actx, method, path, body)
		ch <- result{d, e, false}
	}()
	timer := time.NewTimer(h.opts.HedgeAfter)
	defer timer.Stop()
	pending := 1
	var firstErr error
	for {
		select {
		case r := <-ch:
			if r.err == nil {
				if r.hedge {
					h.hedgeWins.Inc()
				}
				cancel() // the loser's attempt dies with context.Canceled
				return r.data, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if pending--; pending == 0 {
				return nil, firstErr
			}
		case <-timer.C:
			pending++
			h.hedged.Inc()
			go func() {
				d, e := h.attempt(actx, method, path, body)
				ch <- result{d, e, true}
			}()
		}
	}
}

// attempt is one raw wire attempt: build, send, fully read, classify. It
// observes cas.net_ns and charges cas.net_error for transport failures.
func (h *HTTPCAS) attempt(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, h.base+path, rdr)
	if err != nil {
		return nil, err
	}
	req.Header.Set(TenantHeader, h.tenant)
	start := time.Now()
	resp, err := h.client.Do(req)
	var data []byte
	if err == nil {
		var rerr error
		data, rerr = io.ReadAll(io.LimitReader(resp.Body, maxBlobWire+1))
		resp.Body.Close()
		if rerr != nil {
			err = fmt.Errorf("cas: %s %s: read body: %w", method, path, rerr)
			data = nil
		} else if resp.StatusCode < 200 || resp.StatusCode >= 300 {
			err = &statusErr{code: resp.StatusCode, body: string(data)}
			data = nil
		}
	}
	h.histNet.Observe(time.Since(start).Nanoseconds())
	if isNetFailure(err) {
		h.netErrors.Inc()
	}
	return data, err
}

// mapStatus folds a wire status error into the package sentinels.
func mapStatus(err error) error {
	if se, ok := err.(*statusErr); ok {
		switch se.code {
		case http.StatusNotFound:
			return ErrNotFound
		case http.StatusGone:
			return fmt.Errorf("%s: %w", se.body, ErrVerify)
		case http.StatusInsufficientStorage:
			return fmt.Errorf("%s: %w", se.body, ErrQuota)
		}
	}
	return err
}

// Get fetches and byte-verifies a blob.
func (h *HTTPCAS) Get(key Key) ([]byte, error) {
	data, err := h.do(context.Background(), http.MethodGet, "/cas/blob/"+key.String(), nil)
	if err != nil {
		return nil, mapStatus(err)
	}
	if Sum(data) != key {
		return nil, fmt.Errorf("cas: http blob %s: bytes hash to %s: %w", key, Sum(data), ErrVerify)
	}
	return data, nil
}

// Put uploads a blob (server re-verifies; ErrQuota on a full namespace).
func (h *HTTPCAS) Put(key Key, data []byte) error {
	if Sum(data) != key {
		return fmt.Errorf("cas: put %s: bytes hash to %s: %w", key, Sum(data), ErrVerify)
	}
	_, err := h.do(context.Background(), http.MethodPut, "/cas/blob/"+key.String(), data)
	return mapStatus(err)
}

// Has probes blob existence with HEAD.
func (h *HTTPCAS) Has(key Key) (bool, error) {
	_, err := h.do(context.Background(), http.MethodHead, "/cas/blob/"+key.String(), nil)
	if err == nil {
		return true, nil
	}
	if err = mapStatus(err); errors.Is(err, ErrNotFound) {
		return false, nil
	}
	return false, err
}

// Delete is not part of the wire protocol (eviction is server policy);
// it reports success so DiskCAS-oriented callers degrade cleanly.
func (h *HTTPCAS) Delete(Key) error { return nil }

// ActionGet resolves an action entry.
func (h *HTTPCAS) ActionGet(action Key) (Key, error) {
	data, err := h.do(context.Background(), http.MethodGet, "/cas/action/"+action.String(), nil)
	if err != nil {
		return Key{}, mapStatus(err)
	}
	blob, perr := ParseKey(strings.TrimSpace(string(data)))
	if perr != nil {
		return Key{}, fmt.Errorf("cas: http action %s: %v: %w", action, perr, ErrVerify)
	}
	return blob, nil
}

// ActionPut publishes action → blob (waking the server's lease waiters).
func (h *HTTPCAS) ActionPut(action, blob Key) error {
	_, err := h.do(context.Background(), http.MethodPut, "/cas/action/"+action.String(),
		[]byte(blob.String()+"\n"))
	return mapStatus(err)
}

// Lease long-polls the server's coalescing endpoint (Leaser). The
// LeaseBudget bounds the poll; ctx cancellation wins if it comes first.
func (h *HTTPCAS) Lease(ctx context.Context, action Key) (LeaseResult, error) {
	data, err := h.do(ctx, http.MethodPost, "/cas/lease/"+action.String(), nil)
	if err != nil {
		return LeaseResult{}, mapStatus(err)
	}
	line := strings.TrimSpace(string(data))
	switch {
	case line == "leader":
		return LeaseResult{Leader: true}, nil
	case line == "retry":
		return LeaseResult{}, nil
	case strings.HasPrefix(line, "found "):
		blob, perr := ParseKey(strings.TrimPrefix(line, "found "))
		if perr != nil {
			return LeaseResult{}, fmt.Errorf("cas: lease response %q: %w", line, ErrVerify)
		}
		return LeaseResult{Found: true, Blob: blob}, nil
	}
	return LeaseResult{}, fmt.Errorf("cas: lease response %q: %w", line, ErrVerify)
}

// Abandon releases a held lease without publishing.
func (h *HTTPCAS) Abandon(action Key) error {
	_, err := h.do(context.Background(), http.MethodDelete, "/cas/lease/"+action.String(), nil)
	return mapStatus(err)
}
