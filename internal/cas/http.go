package cas

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// HTTPCAS is the client for a serve instance's /cas/ endpoints. It
// implements Store plus Leaser (coalescing), retries transient failures
// (transport errors and 5xx) with exponential backoff, and — like every
// backend — verifies blob bytes against their key on every read, so a
// server (or a middlebox) handing back wrong bytes is a counted miss,
// never a wrong hit.
type HTTPCAS struct {
	base    string // "http://host:port", no trailing slash
	tenant  string
	client  *http.Client
	retries int           // attempts beyond the first
	backoff time.Duration // first retry delay, doubling
}

// NewHTTPCAS builds a client for base (e.g. "http://127.0.0.1:7777") under
// the given tenant namespace ("" means "default").
func NewHTTPCAS(base, tenant string) *HTTPCAS {
	if tenant == "" {
		tenant = "default"
	}
	return &HTTPCAS{
		base:    strings.TrimRight(base, "/"),
		tenant:  tenant,
		client:  &http.Client{Timeout: 30 * time.Second},
		retries: 2,
		backoff: 25 * time.Millisecond,
	}
}

// statusErr carries a non-2xx wire status so do() can map it exactly once.
type statusErr struct {
	code int
	body string
}

func (e *statusErr) Error() string {
	return fmt.Sprintf("cas: http %d: %s", e.code, strings.TrimSpace(e.body))
}

// do issues one request (re-issuing on transient failure) and returns the
// response body. The request body is a byte slice so retries can replay it.
func (h *HTTPCAS) do(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		var rdr io.Reader
		if body != nil {
			rdr = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, h.base+path, rdr)
		if err != nil {
			return nil, err
		}
		req.Header.Set(TenantHeader, h.tenant)
		resp, err := h.client.Do(req)
		if err == nil {
			data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxBlobWire+1))
			resp.Body.Close()
			if rerr != nil {
				err = rerr
			} else if resp.StatusCode >= 200 && resp.StatusCode < 300 {
				return data, nil
			} else {
				serr := &statusErr{code: resp.StatusCode, body: string(data)}
				if resp.StatusCode < 500 {
					return nil, serr // 4xx is a verdict, not a transient
				}
				err = serr
			}
		}
		lastErr = err
		if attempt >= h.retries || ctx.Err() != nil {
			return nil, lastErr
		}
		select {
		case <-time.After(h.backoff << attempt):
		case <-ctx.Done():
			return nil, lastErr
		}
	}
}

// mapStatus folds a wire status error into the package sentinels.
func mapStatus(err error) error {
	if se, ok := err.(*statusErr); ok {
		switch se.code {
		case http.StatusNotFound:
			return ErrNotFound
		case http.StatusGone:
			return fmt.Errorf("%s: %w", se.body, ErrVerify)
		case http.StatusInsufficientStorage:
			return fmt.Errorf("%s: %w", se.body, ErrQuota)
		}
	}
	return err
}

// Get fetches and byte-verifies a blob.
func (h *HTTPCAS) Get(key Key) ([]byte, error) {
	data, err := h.do(context.Background(), http.MethodGet, "/cas/blob/"+key.String(), nil)
	if err != nil {
		return nil, mapStatus(err)
	}
	if Sum(data) != key {
		return nil, fmt.Errorf("cas: http blob %s: bytes hash to %s: %w", key, Sum(data), ErrVerify)
	}
	return data, nil
}

// Put uploads a blob (server re-verifies; ErrQuota on a full namespace).
func (h *HTTPCAS) Put(key Key, data []byte) error {
	if Sum(data) != key {
		return fmt.Errorf("cas: put %s: bytes hash to %s: %w", key, Sum(data), ErrVerify)
	}
	_, err := h.do(context.Background(), http.MethodPut, "/cas/blob/"+key.String(), data)
	return mapStatus(err)
}

// Has probes blob existence with HEAD.
func (h *HTTPCAS) Has(key Key) (bool, error) {
	_, err := h.do(context.Background(), http.MethodHead, "/cas/blob/"+key.String(), nil)
	if err == nil {
		return true, nil
	}
	if err = mapStatus(err); err == ErrNotFound {
		return false, nil
	}
	return false, err
}

// Delete is not part of the wire protocol (eviction is server policy);
// it reports success so DiskCAS-oriented callers degrade cleanly.
func (h *HTTPCAS) Delete(Key) error { return nil }

// ActionGet resolves an action entry.
func (h *HTTPCAS) ActionGet(action Key) (Key, error) {
	data, err := h.do(context.Background(), http.MethodGet, "/cas/action/"+action.String(), nil)
	if err != nil {
		return Key{}, mapStatus(err)
	}
	blob, perr := ParseKey(strings.TrimSpace(string(data)))
	if perr != nil {
		return Key{}, fmt.Errorf("cas: http action %s: %v: %w", action, perr, ErrVerify)
	}
	return blob, nil
}

// ActionPut publishes action → blob (waking the server's lease waiters).
func (h *HTTPCAS) ActionPut(action, blob Key) error {
	_, err := h.do(context.Background(), http.MethodPut, "/cas/action/"+action.String(),
		[]byte(blob.String()+"\n"))
	return mapStatus(err)
}

// Lease long-polls the server's coalescing endpoint (Leaser).
func (h *HTTPCAS) Lease(ctx context.Context, action Key) (LeaseResult, error) {
	data, err := h.do(ctx, http.MethodPost, "/cas/lease/"+action.String(), nil)
	if err != nil {
		return LeaseResult{}, mapStatus(err)
	}
	line := strings.TrimSpace(string(data))
	switch {
	case line == "leader":
		return LeaseResult{Leader: true}, nil
	case line == "retry":
		return LeaseResult{}, nil
	case strings.HasPrefix(line, "found "):
		blob, perr := ParseKey(strings.TrimPrefix(line, "found "))
		if perr != nil {
			return LeaseResult{}, fmt.Errorf("cas: lease response %q: %w", line, ErrVerify)
		}
		return LeaseResult{Found: true, Blob: blob}, nil
	}
	return LeaseResult{}, fmt.Errorf("cas: lease response %q: %w", line, ErrVerify)
}

// Abandon releases a held lease without publishing.
func (h *HTTPCAS) Abandon(action Key) error {
	_, err := h.do(context.Background(), http.MethodDelete, "/cas/lease/"+action.String(), nil)
	return mapStatus(err)
}
