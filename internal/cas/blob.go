package cas

// The on-wire/on-disk blob layout. Every blob the build stack publishes is
// a small fixed header followed by a payload:
//
//	offset  size  field
//	0       4     magic "CASB"
//	4       1     format version (BlobFormatVersion)
//	5       1     kind (KindObject | KindState)
//	6       16    action key the payload was produced for
//	22      uvar  unit-name length (minimal encoding enforced) + bytes
//	…       …     payload (to end of blob)
//
// The header is what makes a poisoned *action entry* detectable: the entry
// maps action → blob key, the blob's bytes verify against the blob key
// (content addressing), and the header's action key must equal the action
// the client asked about — so redirecting an action at a different (valid)
// blob still fails verification instead of serving the wrong object.
//
// Decode enforces: exact magic/version, known kind, minimal uvarint,
// name length bounded by the bytes actually present (allocation is bounded
// by len(data)), and decode-accepted ⇒ re-encode byte-identical. The
// layout is pinned by testdata/casblob_v1.golden.

import (
	"encoding/binary"
	"fmt"

	"statefulcc/internal/codegen"
)

// BlobFormatVersion is the blob layout version this package writes. It is
// part of every action key, so a layout change (like a compiler upgrade)
// simply stops sharing with older processes instead of confusing them.
const BlobFormatVersion = 1

// Blob kinds.
const (
	// KindObject: the payload is an encoded codegen.Object.
	KindObject = 1
	// KindState: the payload is an encoded core.UnitState (internal/state
	// format) — the unit's dormancy records, shared so a second client's
	// recompiles skip dormant passes without warming up locally.
	KindState = 2
)

var blobMagic = [4]byte{'C', 'A', 'S', 'B'}

// Blob is a decoded blob: header fields plus the raw payload.
type Blob struct {
	Kind    int
	Action  Key
	Unit    string
	Payload []byte
}

// EncodeBlob renders the canonical blob bytes for a header + payload.
func EncodeBlob(kind int, action Key, unit string, payload []byte) []byte {
	out := make([]byte, 0, 4+1+1+KeyLen+binary.MaxVarintLen64+len(unit)+len(payload))
	out = append(out, blobMagic[:]...)
	out = append(out, byte(BlobFormatVersion), byte(kind))
	out = append(out, action[:]...)
	out = binary.AppendUvarint(out, uint64(len(unit)))
	out = append(out, unit...)
	out = append(out, payload...)
	return out
}

// DecodeBlob parses blob bytes. Allocation is bounded by len(data); an
// accepted input re-encodes byte-identically.
func DecodeBlob(data []byte) (*Blob, error) {
	const fixed = 4 + 1 + 1 + KeyLen
	if len(data) < fixed {
		return nil, fmt.Errorf("cas: blob too short (%d bytes): %w", len(data), ErrVerify)
	}
	if [4]byte(data[:4]) != blobMagic {
		return nil, fmt.Errorf("cas: bad blob magic: %w", ErrVerify)
	}
	if v := data[4]; v != BlobFormatVersion {
		return nil, fmt.Errorf("cas: blob format %d (want %d): %w", v, BlobFormatVersion, ErrVerify)
	}
	b := &Blob{Kind: int(data[5])}
	if b.Kind != KindObject && b.Kind != KindState {
		return nil, fmt.Errorf("cas: unknown blob kind %d: %w", b.Kind, ErrVerify)
	}
	copy(b.Action[:], data[6:6+KeyLen])
	rest := data[fixed:]
	n, un, err := uvarMin(rest)
	if err != nil {
		return nil, fmt.Errorf("cas: blob unit name length: %w", err)
	}
	rest = rest[un:]
	if n > uint64(len(rest)) {
		return nil, fmt.Errorf("cas: blob unit name length %d exceeds %d remaining bytes: %w",
			n, len(rest), ErrVerify)
	}
	b.Unit = string(rest[:n])
	b.Payload = rest[n:]
	return b, nil
}

// uvarMin decodes a uvarint and rejects non-minimal encodings (a padded
// length would decode fine but break re-encode identity, the property the
// fuzzer pins).
func uvarMin(data []byte) (v uint64, n int, err error) {
	v, n = binary.Uvarint(data)
	if n <= 0 {
		return 0, 0, fmt.Errorf("cas: truncated or overlong uvarint: %w", ErrVerify)
	}
	if n > 1 && data[n-1] == 0 {
		return 0, 0, fmt.Errorf("cas: non-minimal uvarint: %w", ErrVerify)
	}
	return v, n, nil
}

// ---- codegen.Object payload codec ----
//
// A deterministic field-by-field binary encoding of the pre-link object:
// signed fields as zigzag uvarints, strings and slices length-prefixed,
// counts validated against bytes remaining before any allocation. The
// decoded object links byte-identically to the original (the battery's
// oracle check), and decode-accepted ⇒ re-encode byte-identical.

// EncodeObject renders a compiled unit object as its canonical payload.
func EncodeObject(o *codegen.Object) []byte {
	e := objEnc{buf: make([]byte, 0, 256)}
	e.str(o.Unit)
	e.uv(uint64(len(o.Globals)))
	for _, g := range o.Globals {
		e.str(g.Name)
		e.sv(g.Words)
		e.sv(g.Init)
	}
	e.uv(uint64(len(o.Funcs)))
	for _, f := range o.Funcs {
		e.str(f.Name)
		e.uv(uint64(f.NumParams))
		e.uv(uint64(f.NumSlots))
		e.uv(uint64(f.AllocaWords))
		e.bool(f.HasResult)
		e.uv(uint64(len(f.Code)))
		for i := range f.Code {
			in := &f.Code[i]
			e.buf = append(e.buf, byte(in.Op), in.Sub)
			e.sv(int64(in.A))
			e.sv(int64(in.B))
			e.sv(int64(in.C))
			e.sv(in.Imm)
			e.sv(in.Imm2)
			e.sv(int64(in.StrIdx))
			e.uv(uint64(len(in.Args)))
			for _, a := range in.Args {
				e.sv(int64(a))
			}
		}
	}
	e.uv(uint64(len(o.Strings)))
	for _, s := range o.Strings {
		e.str(s)
	}
	e.relocs(o.Relocs)
	e.relocs(o.GlobalRelocs)
	e.uv(uint64(len(o.Externs)))
	for _, s := range o.Externs {
		e.str(s)
	}
	return e.buf
}

// DecodeObject parses an object payload. Every count is validated against
// the bytes actually remaining (one byte minimum per element) before its
// slice is allocated, so a hostile payload cannot force allocation beyond
// O(len(data)).
func DecodeObject(data []byte) (*codegen.Object, error) {
	d := &objDec{buf: data}
	o := &codegen.Object{}
	o.Unit = d.str()
	for range d.count(1) {
		o.Globals = append(o.Globals, codegen.GlobalDef{Name: d.str(), Words: d.sv(), Init: d.sv()})
	}
	for range d.count(4) {
		f := &codegen.FuncCode{
			Name:        d.str(),
			NumParams:   int(d.uv()),
			NumSlots:    int(d.uv()),
			AllocaWords: int(d.uv()),
			HasResult:   d.bool(),
		}
		for range d.count(8) {
			in := codegen.Instr{Op: codegen.Opcode(d.byte()), Sub: d.byte()}
			in.A = d.i32()
			in.B = d.i32()
			in.C = d.i32()
			in.Imm = d.sv()
			in.Imm2 = d.sv()
			in.StrIdx = d.i32()
			for range d.count(1) {
				in.Args = append(in.Args, d.i32())
			}
			f.Code = append(f.Code, in)
		}
		o.Funcs = append(o.Funcs, f)
	}
	for range d.count(1) {
		o.Strings = append(o.Strings, d.str())
	}
	o.Relocs = d.relocs()
	o.GlobalRelocs = d.relocs()
	for range d.count(1) {
		o.Externs = append(o.Externs, d.str())
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("cas: %d trailing bytes after object: %w", len(d.buf), ErrVerify)
	}
	return o, nil
}

type objEnc struct{ buf []byte }

func (e *objEnc) uv(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *objEnc) sv(v int64)  { e.uv(uint64(v)<<1 ^ uint64(v>>63)) }
func (e *objEnc) str(s string) {
	e.uv(uint64(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *objEnc) bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}
func (e *objEnc) relocs(rs []codegen.Reloc) {
	e.uv(uint64(len(rs)))
	for _, r := range rs {
		e.sv(int64(r.Func))
		e.sv(int64(r.Pc))
		e.str(r.Symbol)
	}
}

type objDec struct {
	buf []byte
	err error
}

func (d *objDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("cas: "+format+": %w", append(args, ErrVerify)...)
		d.buf = nil
	}
}

func (d *objDec) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n, err := uvarMin(d.buf)
	if err != nil {
		d.fail("object varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *objDec) sv() int64 {
	v := d.uv()
	return int64(v>>1) ^ -int64(v&1)
}

func (d *objDec) i32() int32 {
	v := d.sv()
	if int64(int32(v)) != v {
		d.fail("object field %d overflows int32", v)
	}
	return int32(v)
}

func (d *objDec) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) == 0 {
		d.fail("truncated object")
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *objDec) bool() bool {
	switch d.byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("object bool out of range")
		return false
	}
}

func (d *objDec) str() string {
	n := d.uv()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)) {
		d.fail("object string length %d exceeds %d remaining bytes", n, len(d.buf))
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

// count reads an element count and bounds it by the bytes remaining (at
// least min bytes per element), so slice allocation stays O(len(input)).
func (d *objDec) count(min int) int {
	n := d.uv()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.buf))/uint64(min)+1 {
		d.fail("object count %d exceeds %d remaining bytes", n, len(d.buf))
		return 0
	}
	return int(n)
}

func (d *objDec) relocs() []codegen.Reloc {
	var out []codegen.Reloc
	for range d.count(3) {
		f, pc := d.sv(), d.sv()
		out = append(out, codegen.Reloc{Func: int(f), Pc: int(pc), Symbol: d.str()})
	}
	return out
}
