package cas_test

// Tenancy policy tests: per-tenant byte quotas, deterministic LRU eviction
// under an injected fake clock, and the refcount rule — a blob leaves the
// backing store only when its last tenant reference goes, so one tenant's
// eviction can never break another tenant's verified reads.

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"statefulcc/internal/cas"
	"statefulcc/internal/obs"
)

// fakeClock is a manually advanced time source for ServerOptions.Now.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// sizedBlob makes a blob of exactly n bytes whose content starts with tag.
func sizedBlob(tag string, n int) (cas.Key, []byte) {
	data := []byte(tag + strings.Repeat("-", n-len(tag)))
	return cas.Sum(data), data
}

func TestTenantQuotaDeterministicLRU(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	mem := cas.NewMemCAS(0)
	srv := cas.NewServer(mem, cas.ServerOptions{TenantQuota: 100, Now: clk.Now, Metrics: reg})

	ka, da := sizedBlob("a", 40)
	kb, db := sizedBlob("b", 40)
	kc, dc := sizedBlob("c", 40)
	if err := srv.Put("t1", ka, da); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if err := srv.Put("t1", kb, db); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	// Third put exceeds the 100-byte quota: the oldest reference (a) must be
	// the victim, and with no other tenant holding it the blob is deleted.
	if err := srv.Put("t1", kc, dc); err != nil {
		t.Fatal(err)
	}
	if got := srv.TenantBytes("t1"); got != 80 {
		t.Fatalf("TenantBytes = %d after eviction, want 80", got)
	}
	if ok, _ := mem.Has(ka); ok {
		t.Fatal("evicted the wrong blob: a (oldest) survived")
	}
	for _, k := range []cas.Key{kb, kc} {
		if ok, _ := mem.Has(k); !ok {
			t.Fatalf("blob %s evicted out of LRU order", k)
		}
	}
	if got := reg.Snapshot()[obs.CtrCASEvicted]; got != 1 {
		t.Fatalf("%s = %d, want 1", obs.CtrCASEvicted, got)
	}

	// A Get refreshes the LRU slot: touch b, then overflow again — c (now
	// oldest) must be the next victim.
	clk.Advance(time.Second)
	if _, err := srv.Get("t1", kb); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	kd, dd := sizedBlob("d", 40)
	if err := srv.Put("t1", kd, dd); err != nil {
		t.Fatal(err)
	}
	if ok, _ := mem.Has(kc); ok {
		t.Fatal("Get did not refresh the LRU slot: c survived over the touched b")
	}
	if ok, _ := mem.Has(kb); !ok {
		t.Fatal("the touched blob b was evicted")
	}
}

func TestTenantQuotaLRUTieBreaksOnKey(t *testing.T) {
	clk := newFakeClock()
	mem := cas.NewMemCAS(0)
	srv := cas.NewServer(mem, cas.ServerOptions{TenantQuota: 100, Now: clk.Now})

	// Two blobs stored at the same fake instant: the victim must be the one
	// with the smaller key string — fully deterministic, no map-order luck.
	k1, d1 := sizedBlob("tie1", 40)
	k2, d2 := sizedBlob("tie2", 40)
	lo, hi := k1, k2
	dlo, dhi := d1, d2
	if k2.String() < k1.String() {
		lo, hi = k2, k1
		dlo, dhi = d2, d1
	}
	if err := srv.Put("t1", lo, dlo); err != nil {
		t.Fatal(err)
	}
	if err := srv.Put("t1", hi, dhi); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	k3, d3 := sizedBlob("third", 40)
	if err := srv.Put("t1", k3, d3); err != nil {
		t.Fatal(err)
	}
	if ok, _ := mem.Has(lo); ok {
		t.Fatal("tie not broken on key order: the smaller key survived")
	}
	if ok, _ := mem.Has(hi); !ok {
		t.Fatal("tie break evicted both tied blobs")
	}
}

func TestSharedBlobEvictionKeepsOtherTenantReads(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	mem := cas.NewMemCAS(0)
	srv := cas.NewServer(mem, cas.ServerOptions{TenantQuota: 100, Now: clk.Now, Metrics: reg})

	kx, dx := sizedBlob("shared", 60)
	if err := srv.Put("t1", kx, dx); err != nil {
		t.Fatal(err)
	}
	// Tenant 2 reads the shared blob, taking its own reference.
	if got, err := srv.Get("t2", kx); err != nil || !bytes.Equal(got, dx) {
		t.Fatalf("t2 Get = %v", err)
	}
	clk.Advance(time.Second)

	// Pressure tenant 1 past its quota: it evicts its reference to x, but
	// the blob must survive — tenant 2 still references it.
	ky, dy := sizedBlob("mine", 60)
	if err := srv.Put("t1", ky, dy); err != nil {
		t.Fatal(err)
	}
	if got := srv.TenantBytes("t1"); got != 60 {
		t.Fatalf("t1 TenantBytes = %d, want 60 (only y)", got)
	}
	if ok, _ := mem.Has(kx); !ok {
		t.Fatal("shared blob deleted while another tenant still references it")
	}
	if got, err := srv.Get("t2", kx); err != nil || !bytes.Equal(got, dx) {
		t.Fatalf("t2 read broken by t1's eviction: %v", err)
	}

	// Only when the last reference goes does the blob leave the store.
	clk.Advance(time.Second)
	kz, dz := sizedBlob("zzz-press", 60)
	if err := srv.Put("t2", kz, dz); err != nil {
		t.Fatal(err)
	}
	if ok, _ := mem.Has(kx); ok {
		t.Fatal("blob with zero remaining references not deleted")
	}
	if got := reg.Snapshot()[obs.CtrCASEvicted]; got != 2 {
		t.Fatalf("%s = %d, want 2", obs.CtrCASEvicted, got)
	}
}

func TestQuotaRefusesOversizedBlob(t *testing.T) {
	srv := cas.NewServer(cas.NewMemCAS(0), cas.ServerOptions{TenantQuota: 100})
	k, d := sizedBlob("way too big", 101)
	if err := srv.Put("t1", k, d); !errors.Is(err, cas.ErrQuota) {
		t.Fatalf("oversized Put = %v, want ErrQuota", err)
	}
	if got := srv.TenantBytes("t1"); got != 0 {
		t.Fatalf("refused put still charged %d bytes", got)
	}
	if ok, _ := srv.Has(k); ok {
		t.Fatal("refused blob landed in the store anyway")
	}
}

func TestServerRejectsPoisonedPut(t *testing.T) {
	reg := obs.NewRegistry()
	srv := cas.NewServer(cas.NewMemCAS(0), cas.ServerOptions{Metrics: reg})
	data := []byte("honest")
	if err := srv.Put("t1", cas.Sum([]byte("other")), data); !errors.Is(err, cas.ErrVerify) {
		t.Fatalf("mismatched Put = %v, want ErrVerify", err)
	}
	if got := reg.Snapshot()[obs.CtrCASVerifyFailed]; got != 1 {
		t.Fatalf("%s = %d, want 1", obs.CtrCASVerifyFailed, got)
	}
	if got := srv.TenantBytes("t1"); got != 0 {
		t.Fatalf("rejected put charged %d bytes", got)
	}
}
