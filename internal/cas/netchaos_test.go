package cas_test

// The partition battery — the network-adversity acceptance proof. Phase 1
// records every client↔server exchange of a clean two-client shared-cache
// run (publisher A, consumer B) with pure-recorder FaultTransports. Phase
// 2 then replays the run once per (exchange × applicable fault kind) —
// refused connections, mid-body hangups, latency spikes, stalls,
// truncation, bit flips, 5xx bursts — against a fresh server, failing
// exactly that one exchange. Every single case must end with BOTH builds
// succeeding and linking byte-identical to the stateless oracle, within
// the deadline budgets; degradation may only surface as warnings and
// counters, never as a wrong or failed build.

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"statefulcc/internal/buildsys"
	"statefulcc/internal/cas"
	"statefulcc/internal/codegen"
	"statefulcc/internal/compiler"
	"statefulcc/internal/obs"
)

// The battery reuses chaos_test.go's chaosSnap two-unit workload.

// chaosOpts are the battery's client options: tight budgets so a single
// stalled exchange costs a bounded slice of the case, fast backoff, and a
// transport to inject through.
func chaosOpts(ft *cas.FaultTransport) cas.HTTPOptions {
	return cas.HTTPOptions{
		Transport:   ft,
		Backoff:     2 * time.Millisecond,
		FetchBudget: 300 * time.Millisecond,
		LeaseBudget: 500 * time.Millisecond,
	}
}

// chaosBuilder is a stateless builder (no local warm state, so every
// remote degradation is fully exercised) wired through ft.
func chaosBuilder(t *testing.T, url, tenant string, ft *cas.FaultTransport) *buildsys.Builder {
	t.Helper()
	b, err := buildsys.NewBuilder(buildsys.Options{
		Mode: compiler.ModeStateless,
		CAS:  cas.NewHTTPCASOpts(url, tenant, chaosOpts(ft)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// netChaosCase is one battery entry: fail `call` on `owner`'s transport
// with `kind`.
type netChaosCase struct {
	owner string // "A" or "B"
	call  cas.NetCall
	kind  cas.NetFault
}

// applicable reports whether kind can meaningfully fire on call: body
// kinds need a recorded 2xx body, and silent-corruption kinds (truncate,
// bitflip) additionally need the client to *read* that body — PUT
// responses are discarded, so corrupting them observably changes nothing.
func applicable(c cas.NetCall, kind cas.NetFault) bool {
	if !kind.BodyFault() {
		return true
	}
	if c.Status < 200 || c.Status >= 300 || c.RespBytes == 0 {
		return false
	}
	if kind == cas.NetTruncate || kind == cas.NetBitFlip {
		return c.Method == "GET" || c.Method == "POST"
	}
	return true
}

func TestPartitionBattery(t *testing.T) {
	snap := chaosSnap()
	oracle := statelessDis(t, snap)

	// Phase 1: record the clean exchange space.
	recSrv := cas.NewServer(cas.NewMemCAS(0), cas.ServerOptions{Metrics: obs.NewRegistry()})
	recHS := httptest.NewServer(recSrv.Handler())
	ftA := cas.NewFaultTransport(nil)
	ftB := cas.NewFaultTransport(nil)
	if _, err := chaosBuilder(t, recHS.URL, "client-a", ftA).Build(snap); err != nil {
		t.Fatalf("clean run, client A: %v", err)
	}
	if _, err := chaosBuilder(t, recHS.URL, "client-b", ftB).Build(snap); err != nil {
		t.Fatalf("clean run, client B: %v", err)
	}
	recHS.Close()
	callsA, callsB := ftA.Calls(), ftB.Calls()
	if len(callsA) == 0 || len(callsB) == 0 {
		t.Fatalf("clean run recorded %d/%d exchanges for A/B; the battery has nothing to fail", len(callsA), len(callsB))
	}

	// Enumerate exchange × kind.
	var cases []netChaosCase
	for _, c := range callsA {
		for _, k := range cas.NetFaultKinds {
			if applicable(c, k) {
				cases = append(cases, netChaosCase{"A", c, k})
			}
		}
	}
	for _, c := range callsB {
		for _, k := range cas.NetFaultKinds {
			if applicable(c, k) {
				cases = append(cases, netChaosCase{"B", c, k})
			}
		}
	}
	t.Logf("partition battery: %d exchanges (A %d, B %d) -> %d cases",
		len(callsA)+len(callsB), len(callsA), len(callsB), len(cases))

	for _, tc := range cases {
		tc := tc
		name := tc.owner + "/" + strings.ReplaceAll(tc.call.String(), "/", "_") + "/" + tc.kind.String()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			srv := cas.NewServer(cas.NewMemCAS(0), cas.ServerOptions{
				Metrics:    obs.NewRegistry(),
				LeaseGrace: 100 * time.Millisecond,
			})
			hs := httptest.NewServer(srv.Handler())
			defer hs.Close()

			rule := cas.NetRule{
				Method: tc.call.Method, Path: tc.call.Path,
				Nth: tc.call.N, Kind: tc.kind,
			}
			var ruleA, ruleB []cas.NetOption
			opt := []cas.NetOption{cas.WithNetRules(rule), cas.WithNetLatency(40 * time.Millisecond)}
			if tc.owner == "A" {
				ruleA = opt
			} else {
				ruleB = opt
			}
			caseFTA := cas.NewFaultTransport(nil, ruleA...)
			caseFTB := cas.NewFaultTransport(nil, ruleB...)
			builderA := chaosBuilder(t, hs.URL, "client-a", caseFTA)
			builderB := chaosBuilder(t, hs.URL, "client-b", caseFTB)

			start := time.Now()
			repA, err := builderA.Build(snap)
			if err != nil {
				t.Fatalf("client A failed under %s on %s: %v", tc.kind, tc.call, err)
			}
			repB, err := builderB.Build(snap)
			if err != nil {
				t.Fatalf("client B failed under %s on %s: %v", tc.kind, tc.call, err)
			}
			elapsed := time.Since(start)

			if got := codegen.DisassembleProgram(repA.Program); got != oracle {
				t.Errorf("client A's output diverged from the oracle under %s on %s", tc.kind, tc.call)
			}
			if got := codegen.DisassembleProgram(repB.Program); got != oracle {
				t.Errorf("client B's output diverged from the oracle under %s on %s", tc.kind, tc.call)
			}
			if elapsed >= 5*time.Second {
				t.Errorf("case took %v; the budgets should bound any single fault well under 5s", elapsed)
			}

			// The fault must actually have fired on the owning transport.
			owner := caseFTA
			if tc.owner == "B" {
				owner = caseFTB
			}
			if len(owner.Injected()) == 0 {
				t.Fatalf("the %s fault never fired on %s — the recorded identity did not replay", tc.kind, tc.call)
			}
			// Failure kinds must be visible in the degradation books (a
			// latency spike is not a failure and may pass silently).
			if tc.kind != cas.NetLatency {
				mA, mB := builderA.Metrics(), builderB.Metrics()
				degraded := int64(0)
				for _, m := range []map[string]int64{mA, mB} {
					degraded += m[obs.CtrCASNetErrors] + m[obs.CtrCASRetries] +
						m[obs.CtrCASBreakerOpen] + m[obs.CtrCASVerifyFailed] + m[obs.CtrCASIOErrors]
				}
				if degraded == 0 {
					t.Errorf("injected %s on %s left no trace in the degradation counters", tc.kind, tc.call)
				}
			}
		})
	}
}
