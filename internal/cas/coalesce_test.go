package cas_test

// Fleet coalescing under real concurrency (run under -race via
// `make cas-battery` / `make race`): 16 builders hit one serve instance
// cold and simultaneously. Request coalescing must elect exactly one
// compile leader per unit — the fleet compiles each unit exactly once in
// total — every builder links the identical program, and no store write is
// torn (every blob still verifies afterwards).

import (
	"sync"
	"testing"

	"statefulcc/internal/buildsys"
	"statefulcc/internal/cas"
	"statefulcc/internal/codegen"
	"statefulcc/internal/compiler"
	"statefulcc/internal/obs"
	"statefulcc/internal/workload"
)

func TestFleetCoalescing(t *testing.T) {
	snap := workload.Generate(workload.QuickSuite()[0])
	oracle := statelessDis(t, snap)

	reg := obs.NewRegistry()
	mem := cas.NewMemCAS(0)
	srv := cas.NewServer(mem, cas.ServerOptions{Metrics: reg})

	const fleet = 16
	builders := make([]*buildsys.Builder, fleet)
	for i := range builders {
		// In-process store handles so all 16 leases contend on the same
		// flight table without HTTP latency masking the races.
		b, err := buildsys.NewBuilder(buildsys.Options{
			Mode: compiler.ModeStateless, CAS: srv.Local("fleet"),
		})
		if err != nil {
			t.Fatal(err)
		}
		builders[i] = b
	}

	gate := make(chan struct{})
	var wg sync.WaitGroup
	reports := make([]*buildsys.Report, fleet)
	errs := make([]error, fleet)
	for i, b := range builders {
		wg.Add(1)
		go func(i int, b *buildsys.Builder) {
			defer wg.Done()
			<-gate
			rep, err := b.Build(snap)
			reports[i], errs[i] = rep, err
		}(i, b)
	}
	close(gate)
	wg.Wait()

	compiled := 0
	for i, err := range errs {
		if err != nil {
			t.Fatalf("builder %d: %v", i, err)
		}
		compiled += reports[i].UnitsCompiled
		if got := codegen.DisassembleProgram(reports[i].Program); got != oracle {
			t.Fatalf("builder %d's output diverged from the fleet oracle", i)
		}
	}
	// Exactly-once compilation across the whole fleet: the lease pre-check
	// and publish both happen under the flight-table lock, so a second
	// leader for an already-published action is impossible.
	if compiled != len(snap) {
		t.Fatalf("fleet compiled %d unit-builds for %d units, want exactly one compile per unit", compiled, len(snap))
	}
	m := reg.Snapshot()
	if got := m[obs.CtrCASPublished]; got != int64(len(snap)) {
		t.Fatalf("%s = %d, want %d (one publish per unit)", obs.CtrCASPublished, got, len(snap))
	}
	// Every non-leader either coalesced onto the leader's flight or arrived
	// after publish and took a plain hit; nothing recompiled, nothing failed
	// verification.
	if hits, co := m[obs.CtrCASHits], m[obs.CtrCASCoalesced]; hits+co < int64((fleet-1)*len(snap)) {
		t.Fatalf("hits %d + coalesced %d cover fewer than the %d non-leader fetches",
			hits, co, (fleet-1)*len(snap))
	}
	if got := m[obs.CtrCASVerifyFailed]; got != 0 {
		t.Fatalf("%s = %d under concurrent publish, want 0 (torn write?)", obs.CtrCASVerifyFailed, got)
	}

	// No torn store writes: every blob the fleet left behind still verifies.
	keys := mem.Keys()
	if len(keys) != len(snap) {
		t.Fatalf("store holds %d blobs for %d units", len(keys), len(snap))
	}
	for _, k := range keys {
		if _, err := mem.Get(k); err != nil {
			t.Fatalf("blob %s does not verify after the fleet run: %v", k, err)
		}
	}
}
