package cas_test

// Codec and wire-protocol fuzzers plus the frozen layout golden.
//
// The fuzz properties: no decoder panics, allocation stays bounded by the
// input length (the codecs validate every count against bytes remaining
// before allocating), and decode-accepted ⇒ re-encode byte-identical — the
// property that makes the cache's verify rule airtight, since any two byte
// strings decoding to the same value would hash to different keys.
//
// testdata/casblob_v1.golden freezes the v1 object-blob bytes. If this
// test fails after a codec change, bump cas.BlobFormatVersion (old and new
// processes then stop sharing instead of misdecoding each other) and
// regenerate with -update.

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"statefulcc/internal/cas"
	"statefulcc/internal/codegen"
)

var update = flag.Bool("update", false, "rewrite golden files")

func FuzzCASKey(f *testing.F) {
	f.Add("0123456789abcdef0123456789abcdef")
	f.Add("00000000000000000000000000000000")
	f.Add("not a key")
	f.Add(strings.Repeat("f", 32))
	f.Fuzz(func(t *testing.T, s string) {
		k, err := cas.ParseKey(s)
		if err == nil && k.String() != s {
			t.Fatalf("accepted %q but round-trips to %q", s, k.String())
		}
		// Sum output always re-parses to itself, whatever the input.
		h := cas.Sum([]byte(s))
		rt, err := cas.ParseKey(h.String())
		if err != nil || rt != h {
			t.Fatalf("Sum key %s does not round-trip: %v", h, err)
		}
	})
}

func FuzzCASBlobDecode(f *testing.F) {
	action := cas.Sum([]byte("seed action"))
	f.Add(cas.EncodeBlob(cas.KindObject, action, "unit.mc", []byte("payload")))
	f.Add(cas.EncodeBlob(cas.KindState, action, "", nil))
	f.Add([]byte("CASB"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := cas.DecodeBlob(data)
		if err != nil {
			return
		}
		re := cas.EncodeBlob(b.Kind, b.Action, b.Unit, b.Payload)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted blob does not re-encode identically:\n in: %x\nout: %x", data, re)
		}
	})
}

func FuzzCASObjectDecode(f *testing.F) {
	f.Add(cas.EncodeObject(goldenObject()))
	f.Add(cas.EncodeObject(&codegen.Object{Unit: "empty.mc"}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		o, err := cas.DecodeObject(data)
		if err != nil {
			return
		}
		re := cas.EncodeObject(o)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted object does not re-encode identically:\n in: %x\nout: %x", data, re)
		}
	})
}

// FuzzCASWire drives the serve handler with arbitrary requests: any input
// may be rejected, none may panic or return a nonsense status.
func FuzzCASWire(f *testing.F) {
	k := cas.Sum([]byte("wire seed")).String()
	f.Add(uint8(0), "blob/"+k, []byte("body"))
	f.Add(uint8(1), "blob/"+k, []byte("body"))
	f.Add(uint8(2), "lease/"+k, []byte(""))
	f.Add(uint8(3), "lease/"+k, []byte(""))
	f.Add(uint8(4), "action/"+k, []byte(k))
	f.Add(uint8(0), "action/not-a-key", []byte(""))
	f.Add(uint8(0), "../../etc/passwd", []byte(""))
	f.Fuzz(func(t *testing.T, m uint8, path string, body []byte) {
		methods := []string{"GET", "PUT", "POST", "DELETE", "HEAD", "PATCH"}
		u, err := url.ParseRequestURI("/cas/" + path)
		if err != nil {
			return // not a request the router could ever see
		}
		srv := cas.NewServer(cas.NewMemCAS(1<<20), cas.ServerOptions{TenantQuota: 4096})
		// Built directly rather than via httptest.NewRequest: the fuzzer may
		// produce paths that parse but cannot survive a request-line re-parse
		// (control bytes), and those still reach a handler in production.
		req := &http.Request{
			Method: methods[int(m)%len(methods)],
			URL:    u,
			Header: make(http.Header),
			Body:   io.NopCloser(bytes.NewReader(body)),
		}
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code < 200 || rec.Code > 599 {
			t.Fatalf("handler returned status %d", rec.Code)
		}
	})
}

// goldenObject exercises every Object field: globals, multiple functions,
// instructions with operands/args/strings, relocs in both tables, externs.
func goldenObject() *codegen.Object {
	return &codegen.Object{
		Unit: "golden.mc",
		Globals: []codegen.GlobalDef{
			{Name: "g0", Words: 2, Init: -7},
			{Name: "g1", Words: 1, Init: 1 << 40},
		},
		Funcs: []*codegen.FuncCode{
			{
				Name: "main", NumParams: 0, NumSlots: 3, AllocaWords: 2, HasResult: true,
				Code: []codegen.Instr{
					{Op: 1, Sub: 0, A: 0, B: -1, C: 2, Imm: 42, Imm2: -9, StrIdx: 0},
					{Op: 2, Sub: 3, A: 1, Args: []int32{0, -2, 7}, StrIdx: 1},
				},
			},
			{
				Name: "helper", NumParams: 2, NumSlots: 2, HasResult: false,
				Code: []codegen.Instr{{Op: 3, A: 2147483647, B: -2147483648, StrIdx: -1}},
			},
		},
		Strings:      []string{"hello", ""},
		Relocs:       []codegen.Reloc{{Func: 0, Pc: 1, Symbol: "helper"}},
		GlobalRelocs: []codegen.Reloc{{Func: 1, Pc: 0, Symbol: "g0"}},
		Externs:      []string{"puts"},
	}
}

// TestGoldenBlobV1 pins the exact v1 bytes of a full object blob — header
// and payload — including the action-key derivation, with every input
// spelled as a literal so the golden moves only when the codec itself does.
func TestGoldenBlobV1(t *testing.T) {
	action := cas.ActionKey("statefulcc/object", 6, 1, "stateful",
		[]string{"fold", "dce"}, "golden.mc", []byte("func main() int { return 42; }"))
	blob := cas.EncodeBlob(cas.KindObject, action, "golden.mc", cas.EncodeObject(goldenObject()))

	path := filepath.Join("testdata", "casblob_v1.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(blob, want) {
		t.Fatalf("blob layout drifted from the frozen v1 golden (%d vs %d bytes); "+
			"bump cas.BlobFormatVersion instead of regenerating in place", len(blob), len(want))
	}

	// The golden decodes back to exactly the source object.
	dec, err := cas.DecodeBlob(want)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Kind != cas.KindObject || dec.Action != action || dec.Unit != "golden.mc" {
		t.Fatalf("golden header decoded to %+v", dec)
	}
	obj, err := cas.DecodeObject(dec.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(obj, goldenObject()) {
		t.Fatal("golden payload does not decode back to the source object")
	}

	// Every strict prefix of the payload is rejected — truncation can never
	// yield a valid (wrong) object.
	for n := 0; n < len(dec.Payload); n++ {
		if _, err := cas.DecodeObject(dec.Payload[:n]); err == nil {
			t.Fatalf("payload prefix of %d/%d bytes decoded without error", n, len(dec.Payload))
		}
	}
}
