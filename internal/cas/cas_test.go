package cas_test

// Backend contract tests: every Store must verify bytes against keys on
// both ends, self-heal poisoned entries, and map absence/corruption onto
// the package sentinels — the properties the degradation layer in
// internal/buildsys relies on.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"statefulcc/internal/cas"
)

func TestKeyStringParseRoundTrip(t *testing.T) {
	k := cas.Sum([]byte("hello"))
	s := k.String()
	if len(s) != cas.KeyHexLen {
		t.Fatalf("rendered key %q has length %d, want %d", s, len(s), cas.KeyHexLen)
	}
	if s != strings.ToLower(s) {
		t.Fatalf("rendered key %q is not lowercase", s)
	}
	back, err := cas.ParseKey(s)
	if err != nil {
		t.Fatal(err)
	}
	if back != k {
		t.Fatalf("ParseKey(%q) = %s, want round trip", s, back)
	}
	if k.Shard() != s[:2] {
		t.Fatalf("Shard() = %q, want %q", k.Shard(), s[:2])
	}
}

func TestParseKeyRejectsNonCanonical(t *testing.T) {
	good := cas.Sum([]byte("x")).String()
	for _, bad := range []string{
		"", "ab", good + "00", good[:31],
		strings.ToUpper(good),
		strings.Replace(good, good[:1], "G", 1),
		strings.Replace(good, good[:1], " ", 1),
	} {
		if _, err := cas.ParseKey(bad); err == nil {
			t.Errorf("ParseKey(%q) accepted a non-canonical spelling", bad)
		}
	}
}

func TestSumDistinguishesInputs(t *testing.T) {
	seen := map[cas.Key]string{}
	for _, in := range []string{"", "a", "b", "ab", "a\x00b", "ba", "hello", "hello "} {
		k := cas.Sum([]byte(in))
		if k.Zero() {
			t.Fatalf("Sum(%q) is the zero key", in)
		}
		if prev, ok := seen[k]; ok {
			t.Fatalf("Sum collision between %q and %q", prev, in)
		}
		seen[k] = in
	}
}

func TestActionKeySensitivity(t *testing.T) {
	base := func() cas.Key {
		return cas.ActionKey("d", 4, 1, "stateful", []string{"p1", "p2"}, "u.mc", []byte("src"))
	}
	variants := []cas.Key{
		cas.ActionKey("e", 4, 1, "stateful", []string{"p1", "p2"}, "u.mc", []byte("src")),
		cas.ActionKey("d", 5, 1, "stateful", []string{"p1", "p2"}, "u.mc", []byte("src")),
		cas.ActionKey("d", 4, 2, "stateful", []string{"p1", "p2"}, "u.mc", []byte("src")),
		cas.ActionKey("d", 4, 1, "stateless", []string{"p1", "p2"}, "u.mc", []byte("src")),
		cas.ActionKey("d", 4, 1, "stateful", []string{"p1p2"}, "u.mc", []byte("src")),
		cas.ActionKey("d", 4, 1, "stateful", []string{"p1", "p2"}, "v.mc", []byte("src")),
		cas.ActionKey("d", 4, 1, "stateful", []string{"p1", "p2"}, "u.mc", []byte("src2")),
	}
	if base() != base() {
		t.Fatal("ActionKey is not deterministic")
	}
	for i, v := range variants {
		if v == base() {
			t.Errorf("variant %d did not change the action key", i)
		}
	}
}

// storeContract exercises the Store interface properties shared by every
// backend.
func storeContract(t *testing.T, s cas.Store) {
	t.Helper()
	data := []byte("the blob payload")
	key := cas.Sum(data)

	if _, err := s.Get(key); !errors.Is(err, cas.ErrNotFound) {
		t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
	}
	if ok, err := s.Has(key); err != nil || ok {
		t.Fatalf("Has(absent) = %v, %v", ok, err)
	}
	if err := s.Put(key, []byte("wrong bytes")); !errors.Is(err, cas.ErrVerify) {
		t.Fatalf("Put with mismatched bytes = %v, want ErrVerify", err)
	}
	if err := s.Put(key, data); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key, data); err != nil {
		t.Fatalf("re-Put of an existing key must be a no-op, got %v", err)
	}
	got, err := s.Get(key)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if ok, _ := s.Has(key); !ok {
		t.Fatal("Has(present) = false")
	}

	action := cas.Sum([]byte("some action"))
	if _, err := s.ActionGet(action); !errors.Is(err, cas.ErrNotFound) {
		t.Fatalf("ActionGet(absent) = %v, want ErrNotFound", err)
	}
	if err := s.ActionPut(action, key); err != nil {
		t.Fatal(err)
	}
	blob, err := s.ActionGet(action)
	if err != nil || blob != key {
		t.Fatalf("ActionGet = %s, %v", blob, err)
	}
	// Last writer wins.
	key2 := cas.Sum([]byte("other"))
	if err := s.Put(key2, []byte("other")); err != nil {
		t.Fatal(err)
	}
	if err := s.ActionPut(action, key2); err != nil {
		t.Fatal(err)
	}
	if blob, _ := s.ActionGet(action); blob != key2 {
		t.Fatalf("ActionPut is not last-writer-wins: %s", blob)
	}

	if err := s.Delete(key); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(key); err != nil {
		t.Fatalf("Delete(absent) must not error, got %v", err)
	}
	if _, err := s.Get(key); !errors.Is(err, cas.ErrNotFound) {
		t.Fatalf("Get after Delete = %v, want ErrNotFound", err)
	}
}

func TestMemCASContract(t *testing.T)  { storeContract(t, cas.NewMemCAS(0)) }
func TestDiskCASContract(t *testing.T) { storeContract(t, cas.NewDiskCAS(t.TempDir(), nil)) }

func TestDiskCASPersistsAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	data := []byte("persisted")
	key := cas.Sum(data)
	action := cas.Sum([]byte("a"))
	d1 := cas.NewDiskCAS(dir, nil)
	if err := d1.Put(key, data); err != nil {
		t.Fatal(err)
	}
	if err := d1.ActionPut(action, key); err != nil {
		t.Fatal(err)
	}
	d2 := cas.NewDiskCAS(dir, nil)
	got, err := d2.Get(key)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("fresh instance Get = %q, %v", got, err)
	}
	if blob, err := d2.ActionGet(action); err != nil || blob != key {
		t.Fatalf("fresh instance ActionGet = %s, %v", blob, err)
	}
}

func TestDiskCASSelfHealsPoisonedBlob(t *testing.T) {
	dir := t.TempDir()
	d := cas.NewDiskCAS(dir, nil)
	data := []byte("honest bytes")
	key := cas.Sum(data)
	if err := d.Put(key, data); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "objects", key.Shard(), key.String())
	if err := os.WriteFile(path, []byte("poisoned"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(key); !errors.Is(err, cas.ErrVerify) {
		t.Fatalf("Get(poisoned) = %v, want ErrVerify", err)
	}
	// Self-heal: the poisoned file is gone, the key is a plain miss now.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("poisoned blob file still on disk: %v", err)
	}
	if _, err := d.Get(key); !errors.Is(err, cas.ErrNotFound) {
		t.Fatalf("Get after self-heal = %v, want ErrNotFound", err)
	}
	// Re-publishing honest bytes works again.
	if err := d.Put(key, data); err != nil {
		t.Fatal(err)
	}
	if got, err := d.Get(key); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get after republish = %q, %v", got, err)
	}
}

func TestDiskCASSelfHealsPoisonedAction(t *testing.T) {
	dir := t.TempDir()
	d := cas.NewDiskCAS(dir, nil)
	action := cas.Sum([]byte("a"))
	path := filepath.Join(dir, "actions", action.Shard(), action.String())
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("not a key at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ActionGet(action); !errors.Is(err, cas.ErrVerify) {
		t.Fatalf("ActionGet(poisoned) = %v, want ErrVerify", err)
	}
	if _, err := d.ActionGet(action); !errors.Is(err, cas.ErrNotFound) {
		t.Fatalf("ActionGet after self-heal = %v, want ErrNotFound", err)
	}
}

func TestDiskCASSweepTemp(t *testing.T) {
	dir := t.TempDir()
	d := cas.NewDiskCAS(dir, nil)
	data := []byte("x")
	if err := d.Put(cas.Sum(data), data); err != nil {
		t.Fatal(err)
	}
	// Fake two crashed writers' leftovers.
	shard := filepath.Join(dir, "objects", cas.Sum(data).Shard())
	for _, name := range []string{".cas-123", ".cas-zzz"} {
		if err := os.WriteFile(filepath.Join(shard, name), []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if n := d.SweepTemp(); n != 2 {
		t.Fatalf("SweepTemp removed %d files, want 2", n)
	}
	if n := d.SweepTemp(); n != 0 {
		t.Fatalf("second SweepTemp removed %d files, want 0", n)
	}
	// The real blob survived the sweep.
	if got, err := d.Get(cas.Sum(data)); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("blob lost to sweep: %q, %v", got, err)
	}
}

func TestMemCASBoundedLRU(t *testing.T) {
	m := cas.NewMemCAS(30)
	mk := func(s string) (cas.Key, []byte) {
		data := []byte(s + strings.Repeat(".", 10-len(s)))
		return cas.Sum(data), data
	}
	ka, da := mk("a")
	kb, db := mk("b")
	kc, dc := mk("c")
	for _, p := range []struct {
		k cas.Key
		d []byte
	}{{ka, da}, {kb, db}, {kc, dc}} {
		if err := m.Put(p.k, p.d); err != nil {
			t.Fatal(err)
		}
	}
	if m.Bytes() != 30 || m.Len() != 3 {
		t.Fatalf("store holds %d bytes / %d blobs, want 30 / 3", m.Bytes(), m.Len())
	}
	// Touch a so b becomes the LRU victim.
	if _, err := m.Get(ka); err != nil {
		t.Fatal(err)
	}
	kd, dd := mk("d")
	if err := m.Put(kd, dd); err != nil {
		t.Fatal(err)
	}
	if ok, _ := m.Has(kb); ok {
		t.Fatal("LRU evicted the wrong blob: b (least recently used) survived")
	}
	for _, k := range []cas.Key{ka, kc, kd} {
		if ok, _ := m.Has(k); !ok {
			t.Fatalf("blob %s evicted out of LRU order", k)
		}
	}
	// A blob bigger than the whole bound is refused outright.
	big := bytes.Repeat([]byte("B"), 31)
	if err := m.Put(cas.Sum(big), big); !errors.Is(err, cas.ErrQuota) {
		t.Fatalf("oversized Put = %v, want ErrQuota", err)
	}
}

func TestMemCASTamperDetected(t *testing.T) {
	m := cas.NewMemCAS(0)
	data := []byte("honest")
	key := cas.Sum(data)
	if err := m.Put(key, data); err != nil {
		t.Fatal(err)
	}
	if !m.Tamper(key, func(b []byte) { b[0] ^= 0xFF }) {
		t.Fatal("Tamper did not find the blob")
	}
	if _, err := m.Get(key); !errors.Is(err, cas.ErrVerify) {
		t.Fatalf("Get(tampered) = %v, want ErrVerify", err)
	}
	// Dropped on detection: now a plain miss.
	if _, err := m.Get(key); !errors.Is(err, cas.ErrNotFound) {
		t.Fatalf("Get after drop = %v, want ErrNotFound", err)
	}
}
