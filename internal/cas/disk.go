package cas

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"strings"

	"statefulcc/internal/vfs"
)

// TempPattern matches the temp files DiskCAS writes before renaming, so
// sweeps (and the chaos canonicalizer) can treat them as invisible.
const TempPattern = ".cas-*"

// DiskCAS is the on-disk backend: a sharded content-addressed layout
//
//	<root>/objects/ab/abcdef…   blob bytes
//	<root>/actions/ab/abcdef…   action entry (32 hex digits of the blob key)
//
// under the vfs seam, with the repo's atomic write discipline (temp file in
// the destination shard, write, fsync, close, rename) so a crash at any
// point leaves either the old state or the new state, never a torn blob.
// Safe for concurrent use: content addressing makes concurrent writers of
// the same key write identical bytes, and rename is atomic.
type DiskCAS struct {
	root string
	fs   vfs.FS
}

// NewDiskCAS opens (or lays out on first write) a disk store rooted at dir.
// A nil fsys means the real filesystem.
func NewDiskCAS(dir string, fsys vfs.FS) *DiskCAS {
	return &DiskCAS{root: dir, fs: vfs.Default(fsys)}
}

func (d *DiskCAS) blobPath(key Key) string {
	return filepath.Join(d.root, "objects", key.Shard(), key.String())
}

func (d *DiskCAS) actionPath(action Key) string {
	return filepath.Join(d.root, "actions", action.Shard(), action.String())
}

// Get reads and verifies a blob. A blob whose bytes no longer hash to its
// key is deleted (self-heal — the key names exactly one byte string, so
// removing a mismatch can only remove corruption) and reported as
// ErrVerify.
func (d *DiskCAS) Get(key Key) ([]byte, error) {
	data, err := d.readFile(d.blobPath(key))
	if err != nil {
		if isNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, err
	}
	if Sum(data) != key {
		_ = d.fs.Remove(d.blobPath(key))
		return nil, fmt.Errorf("cas: disk blob %s: %w", key, ErrVerify)
	}
	return data, nil
}

// Put stores data under key with an atomic temp+fsync+rename write.
func (d *DiskCAS) Put(key Key, data []byte) error {
	if Sum(data) != key {
		return fmt.Errorf("cas: put %s: bytes hash to %s: %w", key, Sum(data), ErrVerify)
	}
	path := d.blobPath(key)
	if _, err := d.fs.Stat(path); err == nil {
		return nil // already stored; content addressing makes this a no-op
	}
	return d.writeAtomic(path, data)
}

// Has reports blob existence without reading it.
func (d *DiskCAS) Has(key Key) (bool, error) {
	_, err := d.fs.Stat(d.blobPath(key))
	if err == nil {
		return true, nil
	}
	if isNotExist(err) {
		return false, nil
	}
	return false, err
}

// Delete removes a blob; absent blobs are not an error.
func (d *DiskCAS) Delete(key Key) error {
	err := d.fs.Remove(d.blobPath(key))
	if err != nil && !isNotExist(err) {
		return err
	}
	return nil
}

// ActionGet resolves an action entry. Entries are 32 hex digits; anything
// else on disk is a poisoned entry — removed and reported as ErrVerify.
func (d *DiskCAS) ActionGet(action Key) (Key, error) {
	data, err := d.readFile(d.actionPath(action))
	if err != nil {
		if isNotExist(err) {
			return Key{}, ErrNotFound
		}
		return Key{}, err
	}
	blob, perr := ParseKey(strings.TrimSpace(string(data)))
	if perr != nil {
		_ = d.fs.Remove(d.actionPath(action))
		return Key{}, fmt.Errorf("cas: disk action %s: %v: %w", action, perr, ErrVerify)
	}
	return blob, nil
}

// ActionPut records action → blob atomically. Last writer wins.
func (d *DiskCAS) ActionPut(action, blob Key) error {
	return d.writeAtomic(d.actionPath(action), []byte(blob.String()+"\n"))
}

func (d *DiskCAS) readFile(path string) ([]byte, error) {
	f, err := d.fs.Open(path)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	cerr := f.Close()
	if err != nil {
		return nil, err
	}
	if cerr != nil {
		return nil, cerr
	}
	return data, nil
}

// writeAtomic is the store's one write path: mkdir the shard, write a temp
// file next to the destination, fsync, close, rename. Any failure removes
// the temp (best effort) and leaves the destination untouched.
func (d *DiskCAS) writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := d.fs.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := d.fs.CreateTemp(dir, TempPattern)
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		_ = d.fs.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		return cleanup(err)
	}
	if err := d.fs.Rename(tmpName, path); err != nil {
		return cleanup(err)
	}
	return nil
}

// SweepTemp removes leftover temp files from crashed writers under both
// namespaces. Best effort; returns the number removed.
func (d *DiskCAS) SweepTemp() int {
	removed := 0
	for _, ns := range []string{"objects", "actions"} {
		nsDir := filepath.Join(d.root, ns)
		shards, err := d.fs.ReadDir(nsDir)
		if err != nil {
			continue
		}
		for _, sh := range shards {
			if !sh.IsDir() {
				continue
			}
			shDir := filepath.Join(nsDir, sh.Name())
			entries, err := d.fs.ReadDir(shDir)
			if err != nil {
				continue
			}
			for _, e := range entries {
				if ok, _ := filepath.Match(TempPattern, e.Name()); ok {
					if d.fs.Remove(filepath.Join(shDir, e.Name())) == nil {
						removed++
					}
				}
			}
		}
	}
	return removed
}

func isNotExist(err error) bool {
	return errors.Is(err, fs.ErrNotExist)
}
