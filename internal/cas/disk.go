package cas

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"strings"

	"statefulcc/internal/vfs"
)

// TempPattern matches the temp files DiskCAS writes before renaming, so
// sweeps (and the chaos canonicalizer) can treat them as invisible.
const TempPattern = ".cas-*"

// DiskCAS is the on-disk backend: a sharded content-addressed layout
//
//	<root>/objects/ab/abcdef…   blob bytes
//	<root>/actions/ab/abcdef…   action entry (32 hex digits of the blob key)
//
// under the vfs seam, with the repo's atomic write discipline (temp file in
// the destination shard, write, fsync, close, rename) so a crash at any
// point leaves either the old state or the new state, never a torn blob.
// Safe for concurrent use: content addressing makes concurrent writers of
// the same key write identical bytes, and rename is atomic.
type DiskCAS struct {
	root string
	fs   vfs.FS
}

// NewDiskCAS opens (or lays out on first write) a disk store rooted at dir.
// A nil fsys means the real filesystem.
func NewDiskCAS(dir string, fsys vfs.FS) *DiskCAS {
	return &DiskCAS{root: dir, fs: vfs.Default(fsys)}
}

func (d *DiskCAS) blobPath(key Key) string {
	return filepath.Join(d.root, "objects", key.Shard(), key.String())
}

func (d *DiskCAS) actionPath(action Key) string {
	return filepath.Join(d.root, "actions", action.Shard(), action.String())
}

// Get reads and verifies a blob. A blob whose bytes no longer hash to its
// key is deleted (self-heal — the key names exactly one byte string, so
// removing a mismatch can only remove corruption) and reported as
// ErrVerify.
func (d *DiskCAS) Get(key Key) ([]byte, error) {
	data, err := d.readFile(d.blobPath(key))
	if err != nil {
		if isNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, err
	}
	if Sum(data) != key {
		_ = d.fs.Remove(d.blobPath(key))
		return nil, fmt.Errorf("cas: disk blob %s: %w", key, ErrVerify)
	}
	return data, nil
}

// Put stores data under key with an atomic temp+fsync+rename write.
func (d *DiskCAS) Put(key Key, data []byte) error {
	if Sum(data) != key {
		return fmt.Errorf("cas: put %s: bytes hash to %s: %w", key, Sum(data), ErrVerify)
	}
	path := d.blobPath(key)
	if _, err := d.fs.Stat(path); err == nil {
		return nil // already stored; content addressing makes this a no-op
	}
	return d.writeAtomic(path, data)
}

// Has reports blob existence without reading it.
func (d *DiskCAS) Has(key Key) (bool, error) {
	_, err := d.fs.Stat(d.blobPath(key))
	if err == nil {
		return true, nil
	}
	if isNotExist(err) {
		return false, nil
	}
	return false, err
}

// Delete removes a blob; absent blobs are not an error.
func (d *DiskCAS) Delete(key Key) error {
	err := d.fs.Remove(d.blobPath(key))
	if err != nil && !isNotExist(err) {
		return err
	}
	return nil
}

// ActionGet resolves an action entry. Entries are 32 hex digits; anything
// else on disk is a poisoned entry — removed and reported as ErrVerify.
func (d *DiskCAS) ActionGet(action Key) (Key, error) {
	data, err := d.readFile(d.actionPath(action))
	if err != nil {
		if isNotExist(err) {
			return Key{}, ErrNotFound
		}
		return Key{}, err
	}
	blob, perr := ParseKey(strings.TrimSpace(string(data)))
	if perr != nil {
		_ = d.fs.Remove(d.actionPath(action))
		return Key{}, fmt.Errorf("cas: disk action %s: %v: %w", action, perr, ErrVerify)
	}
	return blob, nil
}

// ActionPut records action → blob atomically. Last writer wins.
func (d *DiskCAS) ActionPut(action, blob Key) error {
	return d.writeAtomic(d.actionPath(action), []byte(blob.String()+"\n"))
}

func (d *DiskCAS) readFile(path string) ([]byte, error) {
	f, err := d.fs.Open(path)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	cerr := f.Close()
	if err != nil {
		return nil, err
	}
	if cerr != nil {
		return nil, cerr
	}
	return data, nil
}

// writeAtomic is the store's one write path: mkdir the shard, write a temp
// file next to the destination, fsync, close, rename. Any failure removes
// the temp (best effort) and leaves the destination untouched.
func (d *DiskCAS) writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := d.fs.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := d.fs.CreateTemp(dir, TempPattern)
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		_ = d.fs.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		return cleanup(err)
	}
	if err := d.fs.Rename(tmpName, path); err != nil {
		return cleanup(err)
	}
	return nil
}

// SweepTemp removes leftover temp files from crashed writers under every
// namespace — objects, actions, and the tenant ref-marker tree. Best
// effort; returns the number removed. cas.Server runs it automatically at
// startup so a crash mid-publish cannot accumulate temp files unbounded.
func (d *DiskCAS) SweepTemp() int {
	removed := 0
	for _, ns := range []string{"objects", "actions", "tenants"} {
		removed += d.sweepDir(filepath.Join(d.root, ns))
	}
	return removed
}

// sweepDir recursively removes TempPattern files under dir (the tree is
// at most three levels deep: tenants/<tenant>/<shard>/<file>).
func (d *DiskCAS) sweepDir(dir string) int {
	entries, err := d.fs.ReadDir(dir)
	if err != nil {
		return 0
	}
	removed := 0
	for _, e := range entries {
		name := filepath.Join(dir, e.Name())
		if e.IsDir() {
			removed += d.sweepDir(name)
			continue
		}
		if ok, _ := filepath.Match(TempPattern, e.Name()); ok {
			if d.fs.Remove(name) == nil {
				removed++
			}
		}
	}
	return removed
}

// Tenant reference markers: the durable half of cas.Server's per-tenant
// accounting. A marker at
//
//	<root>/tenants/<tenant>/<shard>/<key>
//
// holds the blob's size in decimal and means "this tenant references this
// blob". Markers are written atomically before the blob publishes and
// removed after eviction drops the reference, so at any crash point the
// marker tree is a superset-or-equal of the truth — startup recovery
// (Server.recover) cross-validates every marker against the blob tree,
// drops markers whose blob vanished, and deletes blobs no marker
// references. The rebuilt accounting therefore always matches a
// from-scratch scan.

func (d *DiskCAS) refPath(tenant string, key Key) string {
	return filepath.Join(d.root, "tenants", tenant, key.Shard(), key.String())
}

// WriteTenantRef durably records that tenant references key (size bytes).
// Idempotent: re-writing an existing marker rewrites the same content.
func (d *DiskCAS) WriteTenantRef(tenant string, key Key, size int64) error {
	return d.writeAtomic(d.refPath(tenant, key), []byte(fmt.Sprintf("%d\n", size)))
}

// RemoveTenantRef drops tenant's marker for key; absent markers are not
// an error (crash between blob delete and marker delete re-runs this).
func (d *DiskCAS) RemoveTenantRef(tenant string, key Key) error {
	err := d.fs.Remove(d.refPath(tenant, key))
	if err != nil && !isNotExist(err) {
		return err
	}
	return nil
}

// LoadTenantRefs scans the marker tree and returns per-tenant key→size
// maps plus the number of malformed markers dropped (bad name, bad size —
// removed so the tree self-heals like poisoned action entries do).
func (d *DiskCAS) LoadTenantRefs() (map[string]map[Key]int64, int) {
	refs := make(map[string]map[Key]int64)
	dropped := 0
	tenantsDir := filepath.Join(d.root, "tenants")
	tenants, err := d.fs.ReadDir(tenantsDir)
	if err != nil {
		return refs, 0
	}
	for _, t := range tenants {
		if !t.IsDir() {
			continue
		}
		tDir := filepath.Join(tenantsDir, t.Name())
		shards, err := d.fs.ReadDir(tDir)
		if err != nil {
			continue
		}
		for _, sh := range shards {
			if !sh.IsDir() {
				continue
			}
			shDir := filepath.Join(tDir, sh.Name())
			entries, err := d.fs.ReadDir(shDir)
			if err != nil {
				continue
			}
			for _, e := range entries {
				if e.IsDir() {
					continue
				}
				if ok, _ := filepath.Match(TempPattern, e.Name()); ok {
					continue // SweepTemp's job
				}
				path := filepath.Join(shDir, e.Name())
				key, kerr := ParseKey(e.Name())
				data, rerr := d.readFile(path)
				var size int64
				var serr error
				if rerr == nil {
					_, serr = fmt.Sscanf(strings.TrimSpace(string(data)), "%d", &size)
				}
				if kerr != nil || rerr != nil || serr != nil || size < 0 {
					_ = d.fs.Remove(path)
					dropped++
					continue
				}
				m := refs[t.Name()]
				if m == nil {
					m = make(map[Key]int64)
					refs[t.Name()] = m
				}
				m[key] = size
			}
		}
	}
	return refs, dropped
}

// BlobSize stats a blob (ErrNotFound when absent) — recovery's
// cross-check that a marker's blob really exists at the recorded size.
func (d *DiskCAS) BlobSize(key Key) (int64, error) {
	info, err := d.fs.Stat(d.blobPath(key))
	if err != nil {
		if isNotExist(err) {
			return 0, ErrNotFound
		}
		return 0, err
	}
	return info.Size(), nil
}

// BlobKeys lists every stored blob key — recovery's orphan scan (a blob
// no marker references after a crash is unaccounted garbage and is
// deleted).
func (d *DiskCAS) BlobKeys() []Key {
	var keys []Key
	objDir := filepath.Join(d.root, "objects")
	shards, err := d.fs.ReadDir(objDir)
	if err != nil {
		return nil
	}
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		entries, err := d.fs.ReadDir(filepath.Join(objDir, sh.Name()))
		if err != nil {
			continue
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			if key, err := ParseKey(e.Name()); err == nil {
				keys = append(keys, key)
			}
		}
	}
	return keys
}

func isNotExist(err error) bool {
	return errors.Is(err, fs.ErrNotExist)
}
