package cas

import "context"

// LocalStore is an in-process Store + Leaser view of a Server under one
// tenant: what a serve instance's own builder publishes through (no HTTP
// round trip, same policy layer — quotas, refcounts, coalescing), and what
// tests drive the policy layer with directly.
type LocalStore struct {
	s      *Server
	tenant string
}

// Local returns the server's in-process client for one tenant ("" means
// "default").
func (s *Server) Local(tenant string) *LocalStore {
	if tenant == "" {
		tenant = "default"
	}
	return &LocalStore{s: s, tenant: tenant}
}

func (l *LocalStore) Get(key Key) ([]byte, error)       { return l.s.Get(l.tenant, key) }
func (l *LocalStore) Put(key Key, data []byte) error    { return l.s.Put(l.tenant, key, data) }
func (l *LocalStore) Has(key Key) (bool, error)         { return l.s.Has(key) }
func (l *LocalStore) Delete(key Key) error              { return l.s.Delete(key) }
func (l *LocalStore) ActionGet(action Key) (Key, error) { return l.s.ActionGet(action) }
func (l *LocalStore) ActionPut(action, blob Key) error  { return l.s.ActionPut(action, blob) }

// Lease adapts the server's coalescing to the Leaser interface.
func (l *LocalStore) Lease(ctx context.Context, action Key) (LeaseResult, error) {
	return l.s.Lease(ctx.Done(), action), nil
}

// Abandon releases a held lease.
func (l *LocalStore) Abandon(action Key) error {
	l.s.Abandon(action)
	return nil
}
