// Package cas is the content-addressed artifact store under the shared
// build cache: compiled unit objects and per-unit dormancy records keyed
// by content hash, shared between builder processes, machines, and tenants
// (docs/ARCHITECTURE.md).
//
// Two namespaces:
//
//   - blobs are immutable byte strings addressed by the hash of their own
//     bytes. Every read — every backend, every layer — re-hashes what it
//     got and rejects a blob whose bytes do not hash to its key
//     (ErrVerify). A poisoned blob is therefore a cache miss, never a
//     wrong cache hit: the LaForge correctness bar a shared cache must
//     clear (PAPERS.md).
//
//   - actions map an action key — the hash of everything that determines a
//     compile's output: compiler state version, blob format, mode,
//     pipeline, unit name, source bytes — to the blob key of the result.
//     An action entry cannot be self-verifying (its content is a different
//     hash), so the blob it names carries the action key in its header and
//     clients verify the header against the action they asked for: a
//     poisoned action entry is also just a miss.
//
// Backends: DiskCAS (sharded objects/ab/<key> layout, atomic
// fsync-before-rename writes through the vfs seam), MemCAS (bounded LRU,
// tests and hot tier), HTTPCAS (client for the `minibuild serve` /cas/
// endpoints, with retry/backoff). Server adds multi-tenant namespaces with
// byte quotas, LRU eviction, and request coalescing.
package cas

import (
	"context"
	"errors"
	"fmt"

	"statefulcc/internal/fingerprint"
)

// KeyLen is the raw key length in bytes; KeyHexLen its rendered length.
const (
	KeyLen    = 16
	KeyHexLen = 2 * KeyLen
)

// Key is a 128-bit content address, rendered as 32 lowercase hex digits.
// The zero Key is "no key" and is never a valid content address in the
// store (Sum never returns it for any input the stack stores: both halves
// would have to collide with zero).
type Key [KeyLen]byte

// Zero reports whether k is the zero ("no key") value.
func (k Key) Zero() bool { return k == Key{} }

const hexDigits = "0123456789abcdef"

// String renders the key as 32 lowercase hex digits.
func (k Key) String() string {
	var buf [KeyHexLen]byte
	for i, b := range k {
		buf[2*i] = hexDigits[b>>4]
		buf[2*i+1] = hexDigits[b&0xF]
	}
	return string(buf[:])
}

// Shard is the two-digit directory shard of the key ("ab" of "abcdef…").
func (k Key) Shard() string { return k.String()[:2] }

// ParseKey parses the canonical 32-lowercase-hex rendering. Anything else
// — wrong length, uppercase, non-hex — is an error: keys travel over the
// wire and name files on disk, so there is exactly one accepted spelling.
func ParseKey(s string) (Key, error) {
	var k Key
	if len(s) != KeyHexLen {
		return k, fmt.Errorf("cas: key %q: want %d hex digits, have %d", s, KeyHexLen, len(s))
	}
	for i := 0; i < KeyHexLen; i += 2 {
		hi, ok1 := hexVal(s[i])
		lo, ok2 := hexVal(s[i+1])
		if !ok1 || !ok2 {
			return Key{}, fmt.Errorf("cas: key %q: invalid hex digit at %d", s, i)
		}
		k[i/2] = hi<<4 | lo
	}
	return k, nil
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// Sum computes the content address of data: two independent passes of the
// repo's fingerprint hash under distinct domain-separation prefixes, giving
// a 128-bit key. (The fingerprint hash is the house identity function; two
// domain-separated passes keep the key width honest for a shared store
// without importing a crypto dependency the repo does not have.)
func Sum(data []byte) Key {
	var k Key
	h := fingerprint.New()
	h.Byte(0x1d)
	h.String(string(data))
	a := h.Sum()
	h.Reset()
	h.Byte(0x2e)
	h.String(string(data))
	b := h.Sum()
	for i := 0; i < 8; i++ {
		k[i] = byte(a >> (8 * (7 - i)))
		k[8+i] = byte(b >> (8 * (7 - i)))
	}
	return k
}

// ActionKey derives the action key for one unit compile: the hash of
// everything that determines the compiled object's bytes. stateVersion is
// core.StateVersion (the paper's compiler-upgrade rule: a new compiler
// never reuses an old compiler's artifacts), blobFormat the cas blob
// layout version, mode the compilation policy, pipeline the pass list.
// Every part is length-prefixed so no two part sequences collide.
func ActionKey(domain string, stateVersion, blobFormat int, mode string, pipeline []string, unit string, src []byte) Key {
	h := fingerprint.New()
	h.String(domain)
	h.Int(int64(stateVersion))
	h.Int(int64(blobFormat))
	h.String(mode)
	h.Int(int64(len(pipeline)))
	for _, p := range pipeline {
		h.String(p)
	}
	h.String(unit)
	h.String(string(src))
	a := h.Sum()
	// Second, domain-separated pass for the low half (mirrors Sum).
	h.Reset()
	h.Byte(0x3f)
	h.Uint64(a)
	h.String(domain)
	h.String(unit)
	h.String(string(src))
	b := h.Sum()
	var k Key
	for i := 0; i < 8; i++ {
		k[i] = byte(a >> (8 * (7 - i)))
		k[8+i] = byte(b >> (8 * (7 - i)))
	}
	return k
}

// Sentinel errors every backend maps onto. Callers branch with errors.Is;
// anything else is an I/O-layer failure (degrade, warn, recompile).
var (
	// ErrNotFound: the key has no blob / the action has no entry. A plain
	// miss.
	ErrNotFound = errors.New("cas: not found")
	// ErrVerify: bytes exist but fail verification — blob bytes that do not
	// hash to their key, a malformed action entry, or a blob header that
	// does not match the action asked for. Callers MUST treat this as a
	// miss (recompile), never serve the bytes, and count it
	// (cas.verify_failed).
	ErrVerify = errors.New("cas: verification failed")
	// ErrQuota: the write was refused because it cannot fit the namespace's
	// byte quota even after eviction.
	ErrQuota = errors.New("cas: quota exceeded")
	// ErrUnavailable: the backend is temporarily unreachable and the client
	// declined to wait — the circuit breaker is open, or every admitted
	// attempt burned out. Callers MUST treat this as a miss (compile
	// locally) and never as a retryable condition: the breaker owns
	// recovery via its half-open probes.
	ErrUnavailable = errors.New("cas: backend unavailable")
)

// Store is the pluggable backend interface. All implementations are safe
// for concurrent use and verify blob bytes against their key on both read
// and write.
type Store interface {
	// Get returns the blob's bytes after verifying Sum(bytes) == key.
	// Returns ErrNotFound for an absent key and ErrVerify for a poisoned
	// blob (which the backend may additionally quarantine or delete so the
	// store never stays corrupt).
	Get(key Key) ([]byte, error)
	// Put stores data under key after verifying Sum(data) == key
	// (ErrVerify otherwise). Idempotent: re-putting an existing key is a
	// no-op. May return ErrQuota.
	Put(key Key, data []byte) error
	// Has reports whether the key exists (no verification).
	Has(key Key) (bool, error)
	// Delete removes a blob (absent keys are not an error).
	Delete(key Key) error
	// ActionGet resolves an action key to the blob key of its result
	// (ErrNotFound when absent, ErrVerify when the stored entry is
	// malformed).
	ActionGet(action Key) (Key, error)
	// ActionPut records action → blob. Last writer wins; entries are tiny
	// and advisory (the blob header is what clients trust).
	ActionPut(action, blob Key) error
}

// Leaser is the optional coalescing interface a Store may implement
// (HTTPCAS does, against a serve instance): N concurrent builders of the
// same action elect one compile leader, and everyone else waits for the
// leader's published result instead of compiling the same unit N times.
type Leaser interface {
	// Lease coalesces one action. The first caller becomes the leader
	// (Leader true) and MUST either publish the action (ActionPut) or
	// Abandon it; every other caller blocks until the action publishes
	// (Found true, Blob set), the leader abandons, the server's lease
	// grace expires, or ctx is cancelled (Found false — compile locally).
	Lease(ctx context.Context, action Key) (LeaseResult, error)
	// Abandon releases a held lease without publishing, waking waiters so
	// they fall back to compiling locally.
	Abandon(action Key) error
}

// LeaseResult is one Lease call's verdict.
type LeaseResult struct {
	// Leader: this caller compiles (and must publish or abandon).
	Leader bool
	// Found: a waiter was handed the published result.
	Found bool
	// Blob is the published result's blob key (valid when Found).
	Blob Key
}
