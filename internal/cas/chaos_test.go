package cas_test

// Chaos fault walk over the shared cache's new I/O surface. The on-disk
// backend does all its I/O through the vfs seam, so the walk enumerates
// every (op, path) the publish→fetch sequence performs by recording a
// clean run, then replays the sequence with each point failing, crashing,
// or (for writes) tearing. The degradation contract under every fault:
//
//  1. both builds succeed — a CAS failure surfaces as a warning and a
//     counter, never a build error;
//  2. both linked programs are byte-identical to a stateless baseline —
//     never a wrong cache hit; and
//  3. after the fault clears, a clean publisher/consumer pair over the
//     same store directory gets full remote reuse — the store was never
//     corrupted, only degraded.

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"statefulcc/internal/buildsys"
	"statefulcc/internal/cas"
	"statefulcc/internal/codegen"
	"statefulcc/internal/compiler"
	"statefulcc/internal/obs"
	"statefulcc/internal/project"
	"statefulcc/internal/vfs"
	"statefulcc/internal/vfs/chaostest"
)

// chaosSnap is a two-unit program exercising the cross-unit link path.
func chaosSnap() project.Snapshot {
	return project.Snapshot{
		"lib.mc": []byte(`
func helper(n int) int {
    var s int = 0;
    for var i int = 0; i < n; i++ { s += i; }
    return s;
}
`),
		"main.mc": []byte(`
extern func helper(n int) int;
func main() int {
    print("sum", helper(5));
    return helper(5);
}
`),
	}
}

// casChaosBuilder is a stateless builder over the given store — no state
// dir, so the ONLY faultable I/O in the sequence is the CAS's own.
func casChaosBuilder(t *testing.T, store cas.Store) *buildsys.Builder {
	t.Helper()
	b, err := buildsys.NewBuilder(buildsys.Options{
		Mode: compiler.ModeStateless, Workers: 1, CAS: store,
	})
	if err != nil {
		t.Fatalf("builder creation must survive CAS faults: %v", err)
	}
	return b
}

// casChaosSequence runs the workload under test — builder A publishes a
// cold build into the store, then a fresh builder B builds the same
// snapshot against it — and returns both disassemblies. Both builds must
// succeed: sources come from the in-memory snapshot, so a build error here
// means a CAS I/O fault escaped the degradation layer.
func casChaosSequence(t *testing.T, store cas.Store) (disA, disB string) {
	t.Helper()
	snap := chaosSnap()
	repA, err := casChaosBuilder(t, store).Build(snap)
	if err != nil {
		t.Fatalf("publisher build failed under injected CAS fault: %v", err)
	}
	repB, err := casChaosBuilder(t, store).Build(snap)
	if err != nil {
		t.Fatalf("consumer build failed under injected CAS fault: %v", err)
	}
	return codegen.DisassembleProgram(repA.Program), codegen.DisassembleProgram(repB.Program)
}

// TestChaosCASWalk is the fault-point walk over the publish→fetch sequence.
func TestChaosCASWalk(t *testing.T) {
	snap := chaosSnap()
	base := statelessDis(t, snap)

	// Record a clean run to enumerate the store's fault points.
	recDir := t.TempDir()
	canon := vfs.WithCanon(chaostest.Canon(recDir, cas.TempPattern))
	rec := vfs.NewFaultFS(vfs.OS, canon)
	disA, disB := casChaosSequence(t, cas.NewDiskCAS(recDir, rec))
	if disA != base || disB != base {
		t.Fatal("clean recorded run does not match the stateless baseline")
	}
	points := chaostest.Points(rec.Calls())
	if len(points) < 25 {
		t.Fatalf("recorded only %d CAS fault points; the store's vfs seam has shrunk: %v", len(points), points)
	}
	cov := chaostest.OpsCovered(points)
	for _, op := range []vfs.Op{vfs.OpStat, vfs.OpMkdirAll, vfs.OpCreateTemp, vfs.OpOpen,
		vfs.OpRead, vfs.OpWrite, vfs.OpSync, vfs.OpClose, vfs.OpRename} {
		if cov[op] == 0 {
			t.Fatalf("sequence never performs %s; the walk is not covering the store's I/O surface (%v)", op, cov)
		}
	}
	t.Logf("walking %d CAS fault points (%d ops)", len(points), len(cov))

	for _, p := range points {
		kinds := []vfs.Fault{vfs.FaultError, vfs.FaultCrash}
		if p.Op == vfs.OpWrite {
			kinds = append(kinds, vfs.FaultTorn)
		}
		for _, kind := range kinds {
			p, kind := p, kind
			t.Run(chaostest.Name(p, kind), func(t *testing.T) {
				t.Parallel()
				dir := t.TempDir()
				ffs := vfs.NewFaultFS(vfs.OS,
					vfs.WithCanon(chaostest.Canon(dir, cas.TempPattern)),
					vfs.WithRules(chaostest.RuleFor(p, kind)))
				disA, disB := casChaosSequence(t, cas.NewDiskCAS(dir, ffs))

				chaostest.AssertFiredOrAbsent(t, ffs, p)

				// Invariant: byte-identical output under every fault — a
				// degraded cache recompiles, it never misbuilds.
				if disA != base {
					t.Error("publisher output differs from the stateless baseline")
				}
				if disB != base {
					t.Error("consumer output differs from the stateless baseline")
				}

				// Invariant: the store is never left corrupt. With the fault
				// cleared, a clean publisher/consumer pair over the same
				// directory reaches full remote reuse.
				clean := cas.NewDiskCAS(dir, nil)
				clean.SweepTemp() // crashed writers may leave temps; sweeping is the serve startup path
				if _, err := casChaosBuilder(t, clean).Build(snap); err != nil {
					t.Fatalf("healing build failed: %v", err)
				}
				rep, err := casChaosBuilder(t, clean).Build(snap)
				if err != nil {
					t.Fatalf("post-recovery build failed: %v", err)
				}
				if rep.UnitsRemote != len(snap) || rep.UnitsCompiled != 0 {
					t.Fatalf("post-recovery reuse: %d remote, %d compiled, want all %d remote",
						rep.UnitsRemote, rep.UnitsCompiled, len(snap))
				}
				if codegen.DisassembleProgram(rep.Program) != base {
					t.Error("post-recovery output differs from the stateless baseline")
				}
			})
		}
	}
}

// TestChaosCASTransportDegrades covers the wire client's half of the
// contract: a server failing every request costs warnings and local
// recompiles, never a build error or a wrong output.
func TestChaosCASTransportDegrades(t *testing.T) {
	snap := chaosSnap()
	base := statelessDis(t, snap)

	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "injected server failure", http.StatusInternalServerError)
	}))
	defer hs.Close()

	b := casChaosBuilder(t, cas.NewHTTPCAS(hs.URL, "chaos"))
	rep, err := b.Build(snap)
	if err != nil {
		t.Fatalf("build failed against a broken cache server: %v", err)
	}
	if rep.UnitsCompiled != len(snap) || rep.UnitsRemote != 0 {
		t.Fatalf("broken server: %d compiled, %d remote, want all local", rep.UnitsCompiled, rep.UnitsRemote)
	}
	if codegen.DisassembleProgram(rep.Program) != base {
		t.Fatal("degraded build output differs from the stateless baseline")
	}
	warned := false
	for _, w := range rep.Warnings {
		if strings.Contains(w, "cas:") {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("no cas warning surfaced for a failing server: %v", rep.Warnings)
	}
	if got := b.Metrics()[obs.CtrCASIOErrors]; got == 0 {
		t.Fatal("cas.io_error is zero against a failing server")
	}
}
