package cas_test

// FaultTransport unit proofs: every fault kind observably breaks an
// exchange the advertised way, rules fire on exactly the (method, path,
// nth) identities they name, and a seeded schedule replays byte-for-byte
// — the determinism the partition battery stands on.

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"statefulcc/internal/cas"
)

const faultEchoBody = "0123456789abcdef0123456789abcdef"

// newEchoServer serves a fixed body on every path.
func newEchoServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, faultEchoBody)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// fetch issues one GET through the client and fully reads the body,
// returning the body, status, and the first error encountered.
func fetch(ctx context.Context, client *http.Client, url string) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return data, resp.StatusCode, err
}

func TestFaultTransportKinds(t *testing.T) {
	srv := newEchoServer(t)
	for _, kind := range cas.NetFaultKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			ft := cas.NewFaultTransport(nil,
				cas.WithNetRules(cas.NetRule{Kind: kind}),
				cas.WithNetLatency(60*time.Millisecond))
			client := &http.Client{Transport: ft}
			ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
			defer cancel()
			start := time.Now()
			data, status, err := fetch(ctx, client, srv.URL+"/cas/blob/deadbeef")
			elapsed := time.Since(start)

			switch kind {
			case cas.NetRefused:
				if !errors.Is(err, cas.ErrNetInjected) {
					t.Fatalf("refused: err = %v, want ErrNetInjected", err)
				}
			case cas.NetHangup:
				// Status arrives clean; the body read fails partway.
				if status != http.StatusOK {
					t.Fatalf("hangup: status = %d, want 200", status)
				}
				if !errors.Is(err, cas.ErrNetInjected) {
					t.Fatalf("hangup: read err = %v, want ErrNetInjected", err)
				}
				if len(data) == 0 || len(data) >= len(faultEchoBody) {
					t.Fatalf("hangup delivered %d bytes, want a strict partial of %d", len(data), len(faultEchoBody))
				}
			case cas.NetLatency:
				if err != nil || string(data) != faultEchoBody {
					t.Fatalf("latency: err=%v body=%q, want clean echo", err, data)
				}
				if elapsed < 60*time.Millisecond {
					t.Fatalf("latency spike took %v, want >= 60ms", elapsed)
				}
			case cas.NetStall:
				if err == nil {
					t.Fatal("stall: exchange succeeded, want context-bounded failure")
				}
				if elapsed >= 2*time.Second {
					t.Fatalf("stall outlived the context: %v", elapsed)
				}
			case cas.NetTruncate:
				if err != nil {
					t.Fatalf("truncate: err = %v, want clean EOF", err)
				}
				if len(data) != len(faultEchoBody)/2 {
					t.Fatalf("truncate delivered %d bytes, want %d", len(data), len(faultEchoBody)/2)
				}
			case cas.NetBitFlip:
				if err != nil {
					t.Fatalf("bitflip: err = %v", err)
				}
				if len(data) != len(faultEchoBody) {
					t.Fatalf("bitflip changed the length: %d vs %d", len(data), len(faultEchoBody))
				}
				if string(data) == faultEchoBody {
					t.Fatal("bitflip delivered pristine bytes")
				}
				diff := 0
				for i := range data {
					if data[i] != faultEchoBody[i] {
						diff++
					}
				}
				if diff != 1 {
					t.Fatalf("bitflip changed %d bytes, want exactly 1", diff)
				}
			case cas.Net5xx:
				if err != nil {
					t.Fatalf("5xx: err = %v, want synthesized response", err)
				}
				if status != http.StatusServiceUnavailable {
					t.Fatalf("5xx: status = %d, want 503", status)
				}
			}
			if inj := ft.Injected(); len(inj) != 1 {
				t.Fatalf("Injected() logged %d exchanges, want 1", len(inj))
			}
		})
	}
}

// TestFaultTransportRuleNthCount: a {Nth: 2, Count: 2} rule skips the
// first matching exchange, fails the 2nd and 3rd, and lets the 4th pass.
func TestFaultTransportRuleNthCount(t *testing.T) {
	srv := newEchoServer(t)
	ft := cas.NewFaultTransport(nil, cas.WithNetRules(cas.NetRule{
		Method: http.MethodGet, Path: "/cas/blob/*", Nth: 2, Count: 2, Kind: cas.NetRefused,
	}))
	client := &http.Client{Transport: ft}
	ctx := context.Background()
	wantFail := []bool{false, true, true, false}
	for i, fail := range wantFail {
		_, _, err := fetch(ctx, client, srv.URL+"/cas/blob/k")
		if fail && !errors.Is(err, cas.ErrNetInjected) {
			t.Fatalf("exchange %d: err = %v, want injected refusal", i+1, err)
		}
		if !fail && err != nil {
			t.Fatalf("exchange %d: err = %v, want clean", i+1, err)
		}
	}
	// A non-matching path never fires even while the rule window is open.
	if _, _, err := fetch(ctx, client, srv.URL+"/cas/action/k"); err != nil {
		t.Fatalf("non-matching path faulted: %v", err)
	}
	if inj := ft.Injected(); len(inj) != 2 {
		t.Fatalf("injected %d exchanges, want 2", len(inj))
	}
}

// TestFaultTransportCallLog: the exchange log carries replay-stable
// (method, path, N) identities plus the clean response shape.
func TestFaultTransportCallLog(t *testing.T) {
	srv := newEchoServer(t)
	ft := cas.NewFaultTransport(nil)
	client := &http.Client{Transport: ft}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, _, err := fetch(ctx, client, srv.URL+"/cas/blob/a"); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := fetch(ctx, client, srv.URL+"/cas/blob/b"); err != nil {
		t.Fatal(err)
	}
	calls := ft.Calls()
	if len(calls) != 3 {
		t.Fatalf("logged %d calls, want 3", len(calls))
	}
	want := []cas.NetCall{
		{Method: "GET", Path: "/cas/blob/a", N: 1, Status: 200, RespBytes: len(faultEchoBody)},
		{Method: "GET", Path: "/cas/blob/a", N: 2, Status: 200, RespBytes: len(faultEchoBody)},
		{Method: "GET", Path: "/cas/blob/b", N: 1, Status: 200, RespBytes: len(faultEchoBody)},
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("call %d = %+v, want %+v", i, calls[i], want[i])
		}
	}
	if len(ft.Injected()) != 0 {
		t.Fatal("pure recorder reported injected faults")
	}
}

// TestFaultTransportScheduleDeterminism: the same seed over the same
// workload injects the same faults on the same exchanges; Prob 1 injects
// on every exchange.
func TestFaultTransportScheduleDeterminism(t *testing.T) {
	srv := newEchoServer(t)
	run := func(seed uint64, prob float64) []cas.NetCall {
		ft := cas.NewFaultTransport(nil, cas.WithNetSchedule(&cas.NetSchedule{
			Seed: seed, Prob: prob,
			// Keep the draw to kinds whose failures are cheap and
			// deterministic under a shared context deadline.
			Kinds: []cas.NetFault{cas.NetRefused, cas.NetTruncate, cas.NetBitFlip, cas.Net5xx},
		}))
		client := &http.Client{Transport: ft}
		ctx := context.Background()
		paths := []string{"/cas/blob/a", "/cas/blob/a", "/cas/blob/b", "/cas/action/c", "/cas/blob/a"}
		for _, p := range paths {
			fetch(ctx, client, srv.URL+p)
		}
		return ft.Injected()
	}
	first := run(42, 0.5)
	second := run(42, 0.5)
	if len(first) != len(second) {
		t.Fatalf("same seed injected %d then %d faults", len(first), len(second))
	}
	for i := range first {
		if first[i].Method != second[i].Method || first[i].Path != second[i].Path || first[i].N != second[i].N {
			t.Fatalf("replay diverged at %d: %v vs %v", i, first[i], second[i])
		}
	}
	if other := run(1337, 0.5); len(other) == len(first) {
		same := true
		for i := range other {
			if other[i].Path != first[i].Path || other[i].N != first[i].N {
				same = false
				break
			}
		}
		if same && len(first) > 0 {
			t.Log("different seeds produced the same schedule (possible but unlikely)")
		}
	}
	if all := run(7, 1.0); len(all) != 5 {
		t.Fatalf("Prob=1 injected %d of 5 exchanges", len(all))
	}
}
