package cas_test

// Crash-restart recovery proofs: a server restarted over a DiskCAS tree
// rebuilds exactly the accounting the dead process held (the PR 9
// two-client battery passes against the restarted server with 100%
// hits), torn publish states recover to a consistent store, stale
// coalescing leases expire within the grace window, and the shutdown
// drain wakes every long-poll immediately.

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"statefulcc/internal/cas"
	"statefulcc/internal/codegen"
	"statefulcc/internal/obs"
	"statefulcc/internal/workload"
)

// TestServeRestartPersistence: client A populates a DiskCAS-backed server
// across a commit history; the server process "crashes" (is discarded)
// and a new one starts over the same tree. Recovery must rebuild the
// exact tenant accounting the dead server held, and a fresh client B must
// then build every commit with zero local compiles — the full PR 9
// battery contract, against a restarted server.
func TestServeRestartPersistence(t *testing.T) {
	dir := t.TempDir()
	snaps := batteryHistory(workload.QuickSuite()[0], workload.StreamDefault, 3)

	reg1 := obs.NewRegistry()
	srv1 := cas.NewServer(cas.NewDiskCAS(dir, nil), cas.ServerOptions{Metrics: reg1})
	hs1 := httptest.NewServer(srv1.Handler())
	clientA := casClient(t, hs1.URL, "client-a")
	for i, snap := range snaps {
		if _, err := clientA.Build(snap); err != nil {
			t.Fatalf("commit %d: client A: %v", i, err)
		}
	}
	accounting1 := srv1.TenantAccounting()
	refs1 := srv1.GlobalRefs()
	hs1.Close() // the "crash": srv1's in-memory books are gone

	if len(accounting1["client-a"]) == 0 {
		t.Fatal("client A published nothing; the restart test has no state to recover")
	}

	// Restart: a brand-new server over the same disk tree. NewServer runs
	// recovery before serving.
	reg2 := obs.NewRegistry()
	srv2 := cas.NewServer(cas.NewDiskCAS(dir, nil), cas.ServerOptions{Metrics: reg2})
	hs2 := httptest.NewServer(srv2.Handler())
	defer hs2.Close()

	if got := srv2.TenantAccounting(); !reflect.DeepEqual(got, accounting1) {
		t.Fatalf("recovered tenant accounting diverged from the pre-crash books:\n got %v\nwant %v", got, accounting1)
	}
	if got := srv2.GlobalRefs(); !reflect.DeepEqual(got, refs1) {
		t.Fatalf("recovered global refcounts diverged:\n got %v\nwant %v", got, refs1)
	}
	wantRefs := int64(0)
	for _, m := range accounting1 {
		wantRefs += int64(len(m))
	}
	if got := reg2.Snapshot()[obs.CtrCASRecoveredRefs]; got != wantRefs {
		t.Fatalf("%s = %d, want %d", obs.CtrCASRecoveredRefs, got, wantRefs)
	}
	if got := reg2.Snapshot()[obs.CtrCASRecoveredOrphans]; got != 0 {
		t.Fatalf("%s = %d on a cleanly shut-down tree, want 0", obs.CtrCASRecoveredOrphans, got)
	}

	// The PR 9 battery contract against the restarted server: B compiles
	// nothing, ever, and matches the oracle at every commit.
	clientB := casClient(t, hs2.URL, "client-b")
	for i, snap := range snaps {
		oracle := statelessDis(t, snap)
		rep, err := clientB.Build(snap)
		if err != nil {
			t.Fatalf("commit %d: client B vs restarted server: %v", i, err)
		}
		if rep.UnitsCompiled != 0 {
			t.Fatalf("commit %d: client B compiled %d units against the restarted server (remote %d, cached %d)",
				i, rep.UnitsCompiled, rep.UnitsRemote, rep.UnitsCached)
		}
		if got := codegen.DisassembleProgram(rep.Program); got != oracle {
			t.Fatalf("commit %d: client B's output diverged from the oracle after the restart", i)
		}
	}
}

// TestRecoverTornState stages every torn crash shape directly on disk —
// a healthy marker+blob pair, a marker whose blob never published, a blob
// nobody references, a malformed marker, and an orphaned temp file — and
// proves Recover() converges to exactly the from-scratch-scan state.
func TestRecoverTornState(t *testing.T) {
	dir := t.TempDir()
	d := cas.NewDiskCAS(dir, nil)

	// Healthy pair: marker written before blob, both present.
	goodKey, goodData := cas.Sum([]byte("published blob")), []byte("published blob")
	if err := d.WriteTenantRef("t1", goodKey, int64(len(goodData))); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(goodKey, goodData); err != nil {
		t.Fatal(err)
	}
	// Torn: the leader died after the marker, before the blob.
	lostKey := cas.Sum([]byte("never published"))
	if err := d.WriteTenantRef("t1", lostKey, 15); err != nil {
		t.Fatal(err)
	}
	// Torn the other way: a blob no marker references.
	strayKey, strayData := cas.Sum([]byte("unreferenced blob")), []byte("unreferenced blob")
	if err := d.Put(strayKey, strayData); err != nil {
		t.Fatal(err)
	}
	// A malformed marker (crash mid-write would have been swept as a temp
	// file; this models manual damage) and an orphaned temp file.
	shardDir := filepath.Dir(filepath.Join(dir, "tenants", "t1", goodKey.Shard(), goodKey.String()))
	if err := os.WriteFile(filepath.Join(shardDir, "zz-not-a-key"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	tempFile := filepath.Join(dir, "objects", ".cas-orphan")
	if err := os.MkdirAll(filepath.Dir(tempFile), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tempFile, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	srv := cas.NewServer(d, cas.ServerOptions{Metrics: reg, DisableRecovery: true})
	recovered, orphans := srv.Recover()

	if recovered != 1 {
		t.Fatalf("recovered %d refs, want 1 (the healthy pair)", recovered)
	}
	if orphans < 3 {
		t.Fatalf("recovered %d orphans, want >= 3 (lost marker, stray blob, malformed marker)", orphans)
	}
	// The store converged: the stray blob is gone, the healthy blob serves.
	if ok, _ := d.Has(strayKey); ok {
		t.Fatal("unreferenced blob survived recovery")
	}
	if data, err := srv.Get("t1", goodKey); err != nil || string(data) != string(goodData) {
		t.Fatalf("healthy blob unreadable after recovery: %v", err)
	}
	if _, err := os.Stat(tempFile); !os.IsNotExist(err) {
		t.Fatal("orphaned temp file survived the startup sweep")
	}
	// The torn marker is gone from disk: a second recovery sees only the
	// healthy state.
	refs, dropped := d.LoadTenantRefs()
	if dropped != 0 {
		t.Fatalf("second scan dropped %d markers; recovery left damage behind", dropped)
	}
	if len(refs) != 1 || len(refs["t1"]) != 1 || refs["t1"][goodKey] != int64(len(goodData)) {
		t.Fatalf("marker tree after recovery = %v, want exactly the healthy pair", refs)
	}
	want := map[string]map[cas.Key]int64{"t1": {goodKey: int64(len(goodData))}}
	if got := srv.TenantAccounting(); !reflect.DeepEqual(got, want) {
		t.Fatalf("accounting = %v, want %v", got, want)
	}
	m := reg.Snapshot()
	if m[obs.CtrCASRecoveredRefs] != 1 || m[obs.CtrCASRecoveredOrphans] < 3 {
		t.Fatalf("counters refs/orphans = %d/%d, want 1/>=3",
			m[obs.CtrCASRecoveredRefs], m[obs.CtrCASRecoveredOrphans])
	}
}

// TestExpireStaleLeases: a leader that died holding a lease blocks
// waiters only until the janitor runs — under a fake clock, so the proof
// is that ExpireStaleLeases (not the waiter's own timeout, parked an
// hour out) did the waking.
func TestExpireStaleLeases(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	srv := cas.NewServer(cas.NewMemCAS(0), cas.ServerOptions{
		Metrics: reg, Now: clk.Now, LeaseGrace: time.Hour,
	})
	action := cas.Sum([]byte("stale action"))
	if res := srv.Lease(nil, action); !res.Leader {
		t.Fatalf("first lease = %+v, want leader", res)
	}
	woke := make(chan cas.LeaseResult, 1)
	go func() { woke <- srv.Lease(nil, action) }()
	// Wait for the waiter to actually join the flight.
	deadline := time.Now().Add(2 * time.Second)
	for srv.LeaseWaiters() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	clk.Advance(2 * time.Hour) // the leader is now long dead
	if n := srv.ExpireStaleLeases(); n != 1 {
		t.Fatalf("ExpireStaleLeases reaped %d flights, want 1", n)
	}
	select {
	case res := <-woke:
		if res.Found || res.Leader {
			t.Fatalf("expired-lease waiter got %+v, want a compile-locally verdict", res)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter still blocked after the stale lease expired")
	}
	if got := reg.Snapshot()[obs.CtrCASLeaseExpired]; got != 1 {
		t.Fatalf("%s = %d, want 1", obs.CtrCASLeaseExpired, got)
	}
	// The flight is gone: the next lease elects a fresh leader.
	if res := srv.Lease(nil, action); !res.Leader {
		t.Fatalf("post-expiry lease = %+v, want a fresh leader", res)
	}
}

// TestDrainLeasesWakesWaiters: shutdown releases every long-poll at once.
func TestDrainLeasesWakesWaiters(t *testing.T) {
	srv := cas.NewServer(cas.NewMemCAS(0), cas.ServerOptions{LeaseGrace: time.Hour})
	a1, a2 := cas.Sum([]byte("drain-1")), cas.Sum([]byte("drain-2"))
	if res := srv.Lease(nil, a1); !res.Leader {
		t.Fatal("a1: want leader")
	}
	if res := srv.Lease(nil, a2); !res.Leader {
		t.Fatal("a2: want leader")
	}
	woke := make(chan cas.LeaseResult, 2)
	go func() { woke <- srv.Lease(nil, a1) }()
	go func() { woke <- srv.Lease(nil, a2) }()
	deadline := time.Now().Add(2 * time.Second)
	for srv.LeaseWaiters() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := srv.DrainLeases(); n != 2 {
		t.Fatalf("DrainLeases released %d flights, want 2", n)
	}
	for i := 0; i < 2; i++ {
		select {
		case res := <-woke:
			if res.Found || res.Leader {
				t.Fatalf("drained waiter got %+v, want compile-locally", res)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("a waiter is still blocked after DrainLeases")
		}
	}
}
