package cas

// FaultTransport: the wire-level sibling of vfs.FaultFS. It wraps any
// http.RoundTripper, records every client↔server exchange in a call log,
// and injects deterministic network faults according to explicit rules
// and/or a seeded probabilistic schedule. Determinism is the design
// center, exactly as at the vfs seam: an exchange is identified by
// (method, URL path, nth occurrence of that pair) — a key that does not
// depend on goroutine interleaving across distinct paths — so a fault
// schedule replays exactly under the build system's worker pool, and the
// partition battery can enumerate a clean run's exchanges and then fail
// each one every way (docs/ROBUSTNESS.md, "Network adversity").
//
// Every response body is buffered inside RoundTrip (the /cas/ wire
// protocol's bodies are small and always read to completion), which is
// what lets the body faults — mid-body hangup, silent truncation, bit
// flips — mutate real bytes instead of simulating them.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path"
	"strings"
	"sync"
	"time"
)

// ErrNetInjected is the base error of every injected connection-level
// network fault (refused, stall, hangup).
var ErrNetInjected = errors.New("cas: injected network fault")

// NetFault selects how a firing rule breaks the exchange.
type NetFault int

const (
	// NetRefused fails the exchange before any bytes move, as a refused
	// TCP connection would.
	NetRefused NetFault = iota
	// NetHangup delivers half the response body, then fails the read —
	// the peer dropped the connection mid-body.
	NetHangup
	// NetLatency delays the exchange by the transport's Latency before
	// letting it proceed normally — a tail-latency spike, not a failure.
	NetLatency
	// NetStall blocks the exchange until the request's context is done —
	// an indefinite hang only a deadline budget can bound.
	NetStall
	// NetTruncate delivers a prefix of the response body with a clean EOF
	// — a middlebox that rewrote the framing; nothing at the transport
	// layer signals the loss, so only content verification catches it.
	NetTruncate
	// NetBitFlip flips one byte of the response body — corruption in
	// flight; again only content verification catches it.
	NetBitFlip
	// Net5xx replaces the response with a synthesized 503 without
	// touching the server.
	Net5xx
)

// NetFaultKinds enumerates every injectable kind, in battery order.
var NetFaultKinds = []NetFault{NetRefused, NetHangup, NetLatency, NetStall, NetTruncate, NetBitFlip, Net5xx}

// String names the kind for logs and subtest labels.
func (k NetFault) String() string {
	switch k {
	case NetRefused:
		return "refused"
	case NetHangup:
		return "hangup"
	case NetLatency:
		return "latency"
	case NetStall:
		return "stall"
	case NetTruncate:
		return "truncate"
	case NetBitFlip:
		return "bitflip"
	case Net5xx:
		return "5xx"
	}
	return fmt.Sprintf("netfault(%d)", int(k))
}

// BodyFault reports whether the kind mutates response bytes (and so can
// only fire on an exchange whose clean response carried a body).
func (k NetFault) BodyFault() bool {
	return k == NetHangup || k == NetTruncate || k == NetBitFlip
}

// NetCall is one logged exchange. N is the 1-based occurrence index of
// the (Method, Path) pair — the replay-stable identity of the exchange.
// Status and RespBytes describe the clean response when one was produced
// (0/0 for exchanges that failed before a response).
type NetCall struct {
	Method    string
	Path      string
	N         int
	Status    int
	RespBytes int
}

// String renders the exchange as its subtest-friendly identity.
func (c NetCall) String() string { return fmt.Sprintf("%s %s#%d", c.Method, c.Path, c.N) }

// NetRule selects exchanges to fail. An empty Method or Path matches
// everything (Path is a path.Match glob, also tried against the final
// path element); Nth 0 fires on every matching exchange, Nth n > 0 only
// from the nth matching exchange on, for Count consecutive matches
// (Count <= 0 means one).
type NetRule struct {
	Method string
	Path   string
	Nth    int
	Count  int
	Kind   NetFault
}

// NetSchedule injects faults probabilistically but reproducibly: whether
// an exchange faults, and how, is a pure function of (Seed, method, path,
// occurrence index) — the same seed over the same workload injects the
// same faults regardless of goroutine interleaving.
type NetSchedule struct {
	Seed uint64
	// Prob is the per-exchange injection probability in [0, 1].
	Prob float64
	// Kinds bounds the fault kinds drawn (empty means all of
	// NetFaultKinds); the choice comes from the same hash, so it replays.
	Kinds []NetFault
}

// decide returns whether the exchange faults and how.
func (s *NetSchedule) decide(method, urlPath string, n int) (bool, NetFault) {
	if s == nil || s.Prob <= 0 {
		return false, NetRefused
	}
	h := uint64(14695981039346656037) // FNV-1a offset basis
	mix := func(b byte) { h ^= uint64(b); h *= 1099511628211 }
	for i := 0; i < 8; i++ {
		mix(byte(s.Seed >> (8 * i)))
	}
	for i := 0; i < len(method); i++ {
		mix(method[i])
	}
	mix(0)
	for i := 0; i < len(urlPath); i++ {
		mix(urlPath[i])
	}
	mix(0)
	for i := 0; i < 8; i++ {
		mix(byte(uint64(n) >> (8 * i)))
	}
	if float64(h&0xFFFFFFFF)/float64(1<<32) >= s.Prob {
		return false, NetRefused
	}
	kinds := s.Kinds
	if len(kinds) == 0 {
		kinds = NetFaultKinds
	}
	return true, kinds[(h>>33)%uint64(len(kinds))]
}

// FaultTransport wraps an http.RoundTripper with exchange logging and
// deterministic fault injection. With no rules and no schedule it is a
// pure recorder — the partition battery uses that mode to enumerate the
// exchange space. Safe for concurrent use.
type FaultTransport struct {
	inner   http.RoundTripper
	latency time.Duration

	mu       sync.Mutex
	rules    []NetRule
	matches  []int // per-rule matching-exchange count (drives Nth/Count)
	sched    *NetSchedule
	keyCount map[string]int // method+path → occurrences
	calls    []NetCall
	injected []NetCall
}

// NetOption configures a FaultTransport.
type NetOption func(*FaultTransport)

// WithNetRules installs explicit fault rules.
func WithNetRules(rules ...NetRule) NetOption {
	return func(t *FaultTransport) { t.rules = append(t.rules, rules...) }
}

// WithNetSchedule installs a seeded probabilistic schedule.
func WithNetSchedule(s *NetSchedule) NetOption {
	return func(t *FaultTransport) { t.sched = s }
}

// WithNetLatency sets the delay a NetLatency fault injects (default
// 50ms).
func WithNetLatency(d time.Duration) NetOption {
	return func(t *FaultTransport) { t.latency = d }
}

// NewFaultTransport wraps inner (nil means http.DefaultTransport).
func NewFaultTransport(inner http.RoundTripper, opts ...NetOption) *FaultTransport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	t := &FaultTransport{inner: inner, latency: 50 * time.Millisecond, keyCount: make(map[string]int)}
	for _, o := range opts {
		o(t)
	}
	t.matches = make([]int, len(t.rules))
	return t
}

// Calls returns a copy of the full exchange log, in observation order.
func (t *FaultTransport) Calls() []NetCall {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]NetCall(nil), t.calls...)
}

// Injected returns the exchanges that actually had a fault applied (a
// body fault on a bodyless response never applies and is not counted).
func (t *FaultTransport) Injected() []NetCall {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]NetCall(nil), t.injected...)
}

// begin logs the exchange and decides its fate; idx is the log slot to
// fill in with the clean response's shape later.
func (t *FaultTransport) begin(method, urlPath string) (call NetCall, idx int, kind NetFault, fire bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := method + " " + urlPath
	t.keyCount[key]++
	call = NetCall{Method: method, Path: urlPath, N: t.keyCount[key]}
	idx = len(t.calls)
	t.calls = append(t.calls, call)

	for i := range t.rules {
		r := &t.rules[i]
		if !netRuleMatches(r, call) {
			continue
		}
		t.matches[i]++
		if r.Nth != 0 {
			count := r.Count
			if count <= 0 {
				count = 1
			}
			if t.matches[i] < r.Nth || t.matches[i] >= r.Nth+count {
				continue
			}
		}
		return call, idx, r.Kind, true
	}
	if ok, k := t.sched.decide(method, urlPath, call.N); ok {
		return call, idx, k, true
	}
	return call, idx, NetRefused, false
}

// netRuleMatches reports whether a rule selects an exchange (ignoring
// Nth/Count).
func netRuleMatches(r *NetRule, c NetCall) bool {
	if r.Method != "" && r.Method != c.Method {
		return false
	}
	if r.Path == "" {
		return true
	}
	if ok, _ := path.Match(r.Path, c.Path); ok {
		return true
	}
	if strings.ContainsRune(r.Path, '/') {
		return false
	}
	ok, _ := path.Match(r.Path, path.Base(c.Path))
	return ok
}

// note records the clean response shape for log slot idx.
func (t *FaultTransport) note(idx, status, respBytes int) {
	t.mu.Lock()
	t.calls[idx].Status = status
	t.calls[idx].RespBytes = respBytes
	t.mu.Unlock()
}

// recordInjected marks the exchange as actually faulted.
func (t *FaultTransport) recordInjected(c NetCall) {
	t.mu.Lock()
	t.injected = append(t.injected, c)
	t.mu.Unlock()
}

// RoundTrip implements http.RoundTripper with fault injection. The
// response body is always fully buffered, so callers never observe a
// partially consumed wire stream.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	call, idx, kind, fire := t.begin(req.Method, req.URL.Path)

	if fire {
		switch kind {
		case NetRefused:
			t.recordInjected(call)
			return nil, fmt.Errorf("%s: connection refused: %w", call, ErrNetInjected)
		case NetStall:
			t.recordInjected(call)
			<-req.Context().Done()
			return nil, fmt.Errorf("%s: stalled: %w", call, req.Context().Err())
		case Net5xx:
			t.recordInjected(call)
			body := "injected 503 burst"
			t.note(idx, http.StatusServiceUnavailable, len(body))
			return &http.Response{
				StatusCode:    http.StatusServiceUnavailable,
				Status:        "503 Service Unavailable (injected)",
				Proto:         "HTTP/1.1",
				ProtoMajor:    1,
				ProtoMinor:    1,
				Header:        make(http.Header),
				Body:          io.NopCloser(strings.NewReader(body)),
				ContentLength: int64(len(body)),
				Request:       req,
			}, nil
		case NetLatency:
			t.recordInjected(call)
			timer := time.NewTimer(t.latency)
			select {
			case <-timer.C:
			case <-req.Context().Done():
				timer.Stop()
				return nil, fmt.Errorf("%s: latency spike: %w", call, req.Context().Err())
			}
			// Then proceed with the real exchange below.
		}
	}

	resp, err := t.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(resp.Body)
	cerr := resp.Body.Close()
	if err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	t.note(idx, resp.StatusCode, len(data))

	if fire && kind.BodyFault() && len(data) > 0 {
		t.recordInjected(call)
		switch kind {
		case NetHangup:
			resp.Body = &hangupBody{data: data[:(len(data)+1)/2], call: call}
			resp.ContentLength = -1
			return resp, nil
		case NetTruncate:
			data = data[:len(data)/2]
			resp.ContentLength = -1
		case NetBitFlip:
			flipped := append([]byte(nil), data...)
			flipped[len(flipped)/2] ^= 0x20
			data = flipped
		}
	}
	resp.Body = io.NopCloser(bytes.NewReader(data))
	return resp, nil
}

// hangupBody delivers its prefix, then fails the read as a dropped
// connection would.
type hangupBody struct {
	data []byte
	call NetCall
	off  int
	dead bool
}

func (b *hangupBody) Read(p []byte) (int, error) {
	if b.off < len(b.data) {
		n := copy(p, b.data[b.off:])
		b.off += n
		return n, nil
	}
	b.dead = true
	return 0, fmt.Errorf("%s: connection hangup mid-body: %w", b.call, ErrNetInjected)
}

func (b *hangupBody) Close() error { return nil }
