package cas

import (
	"fmt"
	"sync"
)

// MemCAS is the in-memory backend: bounded by total blob bytes with
// deterministic least-recently-used eviction (an access sequence number,
// not wall time, so tests never race a clock). It is the hot tier and the
// store the tests and the serve benchmarks build on. Safe for concurrent
// use; Get and Put copy, so callers can never alias store memory.
type MemCAS struct {
	mu       sync.Mutex
	maxBytes int64
	curBytes int64
	seq      int64
	blobs    map[Key]*memBlob
	actions  map[Key]Key
}

type memBlob struct {
	data []byte
	used int64 // access sequence; smallest = LRU victim
}

// NewMemCAS builds a memory store holding at most maxBytes of blob bytes;
// maxBytes <= 0 means unbounded.
func NewMemCAS(maxBytes int64) *MemCAS {
	return &MemCAS{
		maxBytes: maxBytes,
		blobs:    make(map[Key]*memBlob),
		actions:  make(map[Key]Key),
	}
}

// Get returns a copy of the blob's bytes after verification. A blob that
// fails verification (someone reached in with Tamper, or a test simulates
// corruption) is dropped and reported as ErrVerify.
func (m *MemCAS) Get(key Key) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blobs[key]
	if !ok {
		return nil, ErrNotFound
	}
	if Sum(b.data) != key {
		m.curBytes -= int64(len(b.data))
		delete(m.blobs, key)
		return nil, fmt.Errorf("cas: mem blob %s: %w", key, ErrVerify)
	}
	m.seq++
	b.used = m.seq
	out := make([]byte, len(b.data))
	copy(out, b.data)
	return out, nil
}

// Put stores a copy of data under key, evicting LRU blobs if the bound
// requires it. A blob larger than the whole bound is refused (ErrQuota).
func (m *MemCAS) Put(key Key, data []byte) error {
	if Sum(data) != key {
		return fmt.Errorf("cas: put %s: bytes hash to %s: %w", key, Sum(data), ErrVerify)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if b, ok := m.blobs[key]; ok {
		m.seq++
		b.used = m.seq
		return nil
	}
	size := int64(len(data))
	if m.maxBytes > 0 && size > m.maxBytes {
		return fmt.Errorf("cas: blob %s is %d bytes, store bound %d: %w", key, size, m.maxBytes, ErrQuota)
	}
	for m.maxBytes > 0 && m.curBytes+size > m.maxBytes {
		m.evictLocked()
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.seq++
	m.blobs[key] = &memBlob{data: cp, used: m.seq}
	m.curBytes += size
	return nil
}

// evictLocked removes the least-recently-used blob; ties (impossible with
// a monotone sequence, but kept for safety) break on key order.
func (m *MemCAS) evictLocked() {
	var victim Key
	var vb *memBlob
	for k, b := range m.blobs {
		if vb == nil || b.used < vb.used || (b.used == vb.used && k.String() < victim.String()) {
			victim, vb = k, b
		}
	}
	if vb == nil {
		return
	}
	m.curBytes -= int64(len(vb.data))
	delete(m.blobs, victim)
}

// Has reports blob existence.
func (m *MemCAS) Has(key Key) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.blobs[key]
	return ok, nil
}

// Delete removes a blob; absent keys are a no-op.
func (m *MemCAS) Delete(key Key) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if b, ok := m.blobs[key]; ok {
		m.curBytes -= int64(len(b.data))
		delete(m.blobs, key)
	}
	return nil
}

// ActionGet resolves an action entry.
func (m *MemCAS) ActionGet(action Key) (Key, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	blob, ok := m.actions[action]
	if !ok {
		return Key{}, ErrNotFound
	}
	return blob, nil
}

// ActionPut records action → blob (last writer wins).
func (m *MemCAS) ActionPut(action, blob Key) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.actions[action] = blob
	return nil
}

// Bytes reports the current stored blob byte total (tests).
func (m *MemCAS) Bytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.curBytes
}

// Len reports the number of stored blobs (tests).
func (m *MemCAS) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.blobs)
}

// Keys lists the stored blob keys in unspecified order (tests).
func (m *MemCAS) Keys() []Key {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Key, 0, len(m.blobs))
	for k := range m.blobs {
		out = append(out, k)
	}
	return out
}

// Tamper mutates a stored blob's bytes in place — the poisoned-blob test
// hook. Returns false if the key is absent.
func (m *MemCAS) Tamper(key Key, mutate func([]byte)) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blobs[key]
	if !ok {
		return false
	}
	mutate(b.data)
	return true
}
