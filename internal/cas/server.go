package cas

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"statefulcc/internal/obs"
)

// Server is the multi-tenant shared-cache service `minibuild serve` mounts
// under /cas/. It wraps one backing Store (blobs are deduplicated across
// tenants — content addressing makes that safe) and adds the policy layer:
//
//   - Tenancy: every request names a tenant (X-CAS-Tenant, default
//     "default"). A tenant holds *references* to blobs; the byte quota and
//     LRU eviction operate on a tenant's references, and the backing blob is
//     deleted only when its global reference count reaches zero. Evicting a
//     shared blob from one tenant therefore never breaks another tenant's
//     reads.
//
//   - Coalescing: Lease elects one compile leader per action key
//     (singleflight); every other concurrent builder of the same action
//     blocks until the leader publishes, then fetches the result instead of
//     compiling. A leader that dies is covered by the lease grace: waiters
//     time out and compile locally, and a stale flight is replaced by the
//     next leaser.
//
// All methods are safe for concurrent use. Time is injectable (Options.Now)
// so the eviction tests run under a fake clock.
//
// Crash-restart safety (docs/ROBUSTNESS.md): when the backing store is a
// RefPersister (DiskCAS is), every tenant reference is mirrored as a
// durable marker file, and NewServer runs startup recovery — sweep
// orphaned temp files, reload the marker tree, cross-validate each marker
// against its blob, drop whichever half of a torn pair survived the
// crash, and rebuild the per-tenant byte totals and global refcounts. The
// rebuilt accounting provably matches a from-scratch scan, so a restarted
// server serves the same hits under the same quotas as the one that died.
type Server struct {
	store   Store
	opts    ServerOptions
	persist RefPersister // non-nil when the store persists tenant refs

	mu      sync.Mutex
	tenants map[string]*tenant
	refs    map[Key]int // global blob refcount across tenants
	flights map[Key]*flight

	inflight atomic.Int64 // /cas/ requests currently being served

	ctrHit, ctrMiss, ctrVerify     *obs.Counter
	ctrCoalesced, ctrPublished     *obs.Counter
	ctrIOErr, ctrEvicted           *obs.Counter
	ctrRecRefs, ctrRecOrphans      *obs.Counter
	ctrLeaseExpired, ctrBodyReject *obs.Counter
	histServe                      *obs.Histogram
}

// RefPersister is the optional durable-accounting interface a backing
// store may implement (DiskCAS does). When present, the server mirrors
// every tenant reference into the store and rebuilds its accounting from
// the mirror at startup.
type RefPersister interface {
	WriteTenantRef(tenant string, key Key, size int64) error
	RemoveTenantRef(tenant string, key Key) error
	LoadTenantRefs() (map[string]map[Key]int64, int)
	BlobSize(key Key) (int64, error)
	BlobKeys() []Key
}

// TempSweeper is the optional crash-janitor interface a backing store may
// implement (DiskCAS does); NewServer runs it before recovery so temp
// files orphaned mid-publish cannot accumulate across restarts.
type TempSweeper interface {
	SweepTemp() int
}

// ServerOptions configures the policy layer.
type ServerOptions struct {
	// TenantQuota bounds each tenant namespace's referenced bytes; <= 0
	// means unbounded.
	TenantQuota int64
	// LeaseGrace bounds how long a lease waiter blocks (and how stale a
	// flight may be before a new leaser replaces it). Default 5s.
	LeaseGrace time.Duration
	// Now is the clock (tests inject a fake one); default time.Now.
	Now func() time.Time
	// Metrics receives the cas.* server counters and the cas.serve_ns
	// histogram; nil disables them.
	Metrics *obs.Registry
	// MaxBodyBytes bounds one request body on the wire (default
	// maxBlobWire). Over-limit uploads are refused with 413 and counted
	// (cas.body_rejected) before they can balloon the server.
	MaxBodyBytes int64
	// DisableRecovery skips startup recovery (tests that stage a specific
	// pre-recovery disk state and want to run recovery by hand).
	DisableRecovery bool
}

type tenant struct {
	bytes int64
	refs  map[Key]*tenantRef
}

type tenantRef struct {
	size int64
	last time.Time
}

type flight struct {
	done      chan struct{}
	blob      Key
	published bool
	created   time.Time
	waiters   int // coalesced callers currently blocked on done (tests)
}

// NewServer wraps a backing store in the policy layer. When the store
// persists tenant refs (DiskCAS), startup recovery runs here: temp sweep,
// marker reload, cross-validation, accounting rebuild.
func NewServer(store Store, opts ServerOptions) *Server {
	if opts.LeaseGrace <= 0 {
		opts.LeaseGrace = 5 * time.Second
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = maxBlobWire
	}
	s := &Server{
		store:   store,
		opts:    opts,
		tenants: make(map[string]*tenant),
		refs:    make(map[Key]int),
		flights: make(map[Key]*flight),
	}
	s.persist, _ = store.(RefPersister)
	if r := opts.Metrics; r != nil {
		s.ctrHit = r.Counter(obs.CtrCASHits)
		s.ctrMiss = r.Counter(obs.CtrCASMisses)
		s.ctrVerify = r.Counter(obs.CtrCASVerifyFailed)
		s.ctrCoalesced = r.Counter(obs.CtrCASCoalesced)
		s.ctrPublished = r.Counter(obs.CtrCASPublished)
		s.ctrIOErr = r.Counter(obs.CtrCASIOErrors)
		s.ctrEvicted = r.Counter(obs.CtrCASEvicted)
		s.ctrRecRefs = r.Counter(obs.CtrCASRecoveredRefs)
		s.ctrRecOrphans = r.Counter(obs.CtrCASRecoveredOrphans)
		s.ctrLeaseExpired = r.Counter(obs.CtrCASLeaseExpired)
		s.ctrBodyReject = r.Counter(obs.CtrCASBodyRejected)
		s.histServe = r.Histogram(obs.HistCASServeNS)
	}
	if !opts.DisableRecovery {
		s.Recover()
	}
	return s
}

// Recover rebuilds the server's tenant accounting from the backing
// store's durable state (a no-op for stores without a RefPersister). The
// sequence and its invariants:
//
//  1. Sweep temp files orphaned by a crash mid-publish (TempSweeper).
//  2. Reload the tenant ref-marker tree; malformed markers are dropped.
//  3. Cross-validate every marker against its blob. Markers were written
//     before their blob published and removed after eviction deleted it,
//     so a crash leaves at most a marker without a blob (leader died
//     before publishing) or a blob without a marker (crash between blob
//     delete and marker delete is impossible in that order, but a
//     from-scratch blob may predate tenancy) — both halves of a torn
//     pair are dropped, counted as cas.recovered_orphans.
//  4. Rebuild per-tenant byte totals and global refcounts from the
//     surviving markers (cas.recovered_refs), then re-apply quotas.
//
// The result is exactly what a from-scratch scan of the store would
// build: no reference without a readable blob, no blob without a
// reference, totals that sum the surviving sizes.
func (s *Server) Recover() (recovered, orphans int) {
	if s.persist == nil {
		return 0, 0
	}
	if sw, ok := s.store.(TempSweeper); ok {
		sw.SweepTemp()
	}
	refs, dropped := s.persist.LoadTenantRefs()
	orphans = dropped
	referenced := make(map[Key]bool)
	s.mu.Lock()
	for tenantName, m := range refs {
		t := s.tenantLocked(tenantName)
		for key, size := range m {
			actual, err := s.persist.BlobSize(key)
			if err != nil || actual != size {
				// Marker without a matching blob: the leader died between
				// marker write and blob publish (or the blob is torn —
				// content addressing fixes a key's size, so a mismatch can
				// only be corruption, and reads would refuse it anyway).
				_ = s.persist.RemoveTenantRef(tenantName, key)
				orphans++
				continue
			}
			t.refs[key] = &tenantRef{size: size, last: s.opts.Now()}
			t.bytes += size
			s.refs[key]++
			referenced[key] = true
			recovered++
		}
	}
	for _, key := range s.persist.BlobKeys() {
		if !referenced[key] {
			_ = s.store.Delete(key)
			orphans++
		}
	}
	for name, t := range s.tenants {
		s.evictLocked(name, t)
	}
	s.mu.Unlock()
	s.ctrRecRefs.Add(int64(recovered))
	s.ctrRecOrphans.Add(int64(orphans))
	return recovered, orphans
}

// Metrics returns the registry the server counts into (may be nil).
func (s *Server) Metrics() *obs.Registry { return s.opts.Metrics }

func (s *Server) tenantLocked(name string) *tenant {
	t, ok := s.tenants[name]
	if !ok {
		t = &tenant{refs: make(map[Key]*tenantRef)}
		s.tenants[name] = t
	}
	return t
}

// Get reads a blob on behalf of a tenant, touching its LRU slot.
func (s *Server) Get(tenantName string, key Key) ([]byte, error) {
	data, err := s.store.Get(key)
	if err != nil {
		if errors.Is(err, ErrVerify) {
			// The backing store dropped a poisoned blob; drop every
			// tenant's reference too so quotas stay truthful.
			s.ctrVerify.Inc()
			s.dropRefs(key)
		}
		return nil, err
	}
	s.mu.Lock()
	t := s.tenantLocked(tenantName)
	if ref, ok := t.refs[key]; ok {
		ref.last = s.opts.Now()
	} else {
		// Reading a blob another tenant published creates a reference (the
		// reader now depends on it staying alive).
		t.refs[key] = &tenantRef{size: int64(len(data)), last: s.opts.Now()}
		t.bytes += int64(len(data))
		s.refs[key]++
		s.persistRef(tenantName, key, int64(len(data)))
		s.evictLocked(tenantName, t)
	}
	s.mu.Unlock()
	return data, nil
}

// Put stores a blob into a tenant's namespace, evicting that tenant's LRU
// references as needed to fit the quota. A blob bigger than the whole
// quota is refused (ErrQuota).
func (s *Server) Put(tenantName string, key Key, data []byte) error {
	if Sum(data) != key {
		s.ctrVerify.Inc()
		return fmt.Errorf("cas: put %s: bytes hash to %s: %w", key, Sum(data), ErrVerify)
	}
	size := int64(len(data))
	if s.opts.TenantQuota > 0 && size > s.opts.TenantQuota {
		return fmt.Errorf("cas: blob %s is %d bytes, tenant quota %d: %w",
			key, size, s.opts.TenantQuota, ErrQuota)
	}
	s.mu.Lock()
	t := s.tenantLocked(tenantName)
	if ref, ok := t.refs[key]; ok {
		ref.last = s.opts.Now()
		s.mu.Unlock()
		return nil
	}
	t.refs[key] = &tenantRef{size: size, last: s.opts.Now()}
	t.bytes += size
	s.refs[key]++
	// Marker before blob: a crash between the two leaves a marker whose
	// blob is missing, which recovery drops; the reverse order would leave
	// an unaccounted blob holding real bytes.
	s.persistRef(tenantName, key, size)
	s.evictLocked(tenantName, t)
	s.mu.Unlock()
	if err := s.store.Put(key, data); err != nil {
		s.dropRefs(key)
		return err
	}
	return nil
}

// evictLocked shrinks tenant t to its quota by evicting least-recently-used
// references (oldest access first; key order breaks ties, so the choice is
// deterministic under a fake clock). The blob itself is deleted only when
// no tenant references it anymore.
func (s *Server) evictLocked(name string, t *tenant) {
	if s.opts.TenantQuota <= 0 {
		return
	}
	for t.bytes > s.opts.TenantQuota {
		var victim Key
		var vr *tenantRef
		for k, r := range t.refs {
			if vr == nil || r.last.Before(vr.last) ||
				(r.last.Equal(vr.last) && k.String() < victim.String()) {
				victim, vr = k, r
			}
		}
		if vr == nil {
			return
		}
		t.bytes -= vr.size
		delete(t.refs, victim)
		s.unpersistRef(name, victim)
		s.ctrEvicted.Inc()
		if s.refs[victim]--; s.refs[victim] <= 0 {
			delete(s.refs, victim)
			_ = s.store.Delete(victim)
		}
	}
}

// dropRefs removes every tenant's reference to a blob that no longer
// exists (poisoned and self-healed, or a failed store write).
func (s *Server) dropRefs(key Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, t := range s.tenants {
		if ref, ok := t.refs[key]; ok {
			t.bytes -= ref.size
			delete(t.refs, key)
			s.unpersistRef(name, key)
		}
	}
	delete(s.refs, key)
}

// persistRef / unpersistRef mirror one reference change into the durable
// marker tree (no-ops without a RefPersister). Failures degrade: the
// in-memory accounting stays authoritative for this process's lifetime,
// the miss is counted, and recovery after the next restart re-derives a
// consistent state from whatever did land.
func (s *Server) persistRef(tenant string, key Key, size int64) {
	if s.persist == nil {
		return
	}
	if err := s.persist.WriteTenantRef(tenant, key, size); err != nil {
		s.ctrIOErr.Inc()
	}
}

func (s *Server) unpersistRef(tenant string, key Key) {
	if s.persist == nil {
		return
	}
	if err := s.persist.RemoveTenantRef(tenant, key); err != nil {
		s.ctrIOErr.Inc()
	}
}

// TenantBytes reports a tenant's referenced byte total (tests, /dash).
func (s *Server) TenantBytes(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[name]; ok {
		return t.bytes
	}
	return 0
}

// Has reports blob existence (tenant-agnostic: existence is global).
func (s *Server) Has(key Key) (bool, error) { return s.store.Has(key) }

// Delete removes a blob and every tenant's reference to it.
func (s *Server) Delete(key Key) error {
	s.dropRefs(key)
	return s.store.Delete(key)
}

// ActionGet resolves an action entry, counting hit/miss.
func (s *Server) ActionGet(action Key) (Key, error) {
	blob, err := s.store.ActionGet(action)
	switch {
	case err == nil:
		s.ctrHit.Inc()
	case errors.Is(err, ErrNotFound):
		s.ctrMiss.Inc()
	case errors.Is(err, ErrVerify):
		s.ctrVerify.Inc()
	default:
		s.ctrIOErr.Inc()
	}
	return blob, err
}

// ActionPut records action → blob and wakes any coalesced waiters.
func (s *Server) ActionPut(action, blob Key) error {
	if err := s.store.ActionPut(action, blob); err != nil {
		s.ctrIOErr.Inc()
		return err
	}
	s.ctrPublished.Inc()
	s.mu.Lock()
	if f, ok := s.flights[action]; ok {
		f.blob = blob
		f.published = true
		close(f.done)
		delete(s.flights, action)
	}
	s.mu.Unlock()
	return nil
}

// Lease coalesces concurrent builds of one action. The first caller (or
// the first after a stale flight) becomes the leader and must ActionPut or
// Abandon; everyone else blocks until publish, abandon, grace expiry, or
// cancel (cancel is the HTTP request context on the wire path).
func (s *Server) Lease(cancel <-chan struct{}, action Key) LeaseResult {
	s.mu.Lock()
	// A result published before we leased is a plain hit, not coalescing.
	if blob, err := s.store.ActionGet(action); err == nil {
		s.mu.Unlock()
		s.ctrHit.Inc()
		return LeaseResult{Found: true, Blob: blob}
	}
	f, ok := s.flights[action]
	if !ok || s.opts.Now().Sub(f.created) > s.opts.LeaseGrace {
		// No flight, or its leader has exceeded the grace (died): take over.
		s.flights[action] = &flight{done: make(chan struct{}), created: s.opts.Now()}
		s.mu.Unlock()
		return LeaseResult{Leader: true}
	}
	f.waiters++
	s.mu.Unlock()

	timer := time.NewTimer(s.opts.LeaseGrace)
	defer timer.Stop()
	select {
	case <-f.done:
		if f.published {
			s.ctrCoalesced.Inc()
			return LeaseResult{Found: true, Blob: f.blob}
		}
		return LeaseResult{} // leader abandoned: compile locally
	case <-timer.C:
		return LeaseResult{} // leader too slow: compile locally
	case <-cancel:
		return LeaseResult{}
	}
}

// Abandon releases a flight without publishing, waking waiters so they
// compile locally.
func (s *Server) Abandon(action Key) {
	s.mu.Lock()
	if f, ok := s.flights[action]; ok {
		close(f.done)
		delete(s.flights, action)
	}
	s.mu.Unlock()
}

// ExpireStaleLeases reaps coalescing flights whose leader has exceeded
// the lease grace without publishing or abandoning (it died, or its
// network did). Waiters wake and compile locally; the serve loop runs
// this periodically (cas.lease_expired counts the reaps). Returns the
// number expired.
func (s *Server) ExpireStaleLeases() int {
	s.mu.Lock()
	now := s.opts.Now()
	n := 0
	for action, f := range s.flights {
		if now.Sub(f.created) > s.opts.LeaseGrace {
			close(f.done) // published stays false: waiters compile locally
			delete(s.flights, action)
			n++
		}
	}
	s.mu.Unlock()
	s.ctrLeaseExpired.Add(int64(n))
	return n
}

// DrainLeases wakes every lease waiter regardless of age — the shutdown
// path, run before http.Server.Shutdown so long-polls cannot hold the
// graceful drain open for a full grace window. Returns the number of
// flights released.
func (s *Server) DrainLeases() int {
	s.mu.Lock()
	n := len(s.flights)
	for action, f := range s.flights {
		close(f.done)
		delete(s.flights, action)
	}
	s.mu.Unlock()
	return n
}

// LeaseWaiters reports how many callers are currently blocked inside
// Lease across all flights (tests synchronize on it; /healthz could too).
func (s *Server) LeaseWaiters() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, f := range s.flights {
		n += f.waiters
	}
	return n
}

// TenantAccounting snapshots every tenant's key→size reference map —
// the restart tests compare this against a from-scratch scan.
func (s *Server) TenantAccounting() map[string]map[Key]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]map[Key]int64, len(s.tenants))
	for name, t := range s.tenants {
		m := make(map[Key]int64, len(t.refs))
		for k, r := range t.refs {
			m[k] = r.size
		}
		out[name] = m
	}
	return out
}

// GlobalRefs snapshots the cross-tenant blob refcounts.
func (s *Server) GlobalRefs() map[Key]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Key]int, len(s.refs))
	for k, n := range s.refs {
		out[k] = n
	}
	return out
}

// InFlight reports the number of /cas/ requests currently being served
// (the drain loop and /healthz export it).
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// ---- HTTP wire protocol ----
//
//	GET    /cas/blob/<key>     200 bytes | 404 | 410 (verify failed) | 500
//	HEAD   /cas/blob/<key>     200 | 404
//	PUT    /cas/blob/<key>     204 | 400 (verify) | 507 (quota) | 500
//	GET    /cas/action/<key>   200 "<blobkey>\n" | 404 | 410 | 500
//	PUT    /cas/action/<key>   body "<blobkey>" → 204
//	POST   /cas/lease/<key>    long-poll → "leader\n" | "found <blobkey>\n" | "retry\n"
//	DELETE /cas/lease/<key>    204 (abandon)
//
// The tenant rides in the X-CAS-Tenant header (default "default"). Status
// codes are chosen so a client can branch without parsing bodies: 404 is a
// miss, 410 a verify failure (also a miss, but counted), 507 a quota
// refusal.

// TenantHeader names the HTTP header carrying the tenant namespace.
const TenantHeader = "X-CAS-Tenant"

// maxBlobWire bounds a single uploaded blob (64 MiB — far above any unit
// object, small enough that a hostile PUT cannot balloon the server).
const maxBlobWire = 64 << 20

// ValidTenant reports whether a tenant name is acceptable on the wire.
// Tenant names become filesystem path components in the durable ref tree,
// so the grammar is strict: 1–64 characters of [A-Za-z0-9._-], not
// starting with a dot (which also excludes "." and ".." — a hostile
// header cannot escape the tenants/ directory).
func ValidTenant(name string) bool {
	if name == "" || len(name) > 64 || name[0] == '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// Handler returns the /cas/ HTTP handler. Mount it at "/cas/".
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		start := time.Now()
		defer func() { s.histServe.Observe(time.Since(start).Nanoseconds()) }()
		tenantName := r.Header.Get(TenantHeader)
		if tenantName == "" {
			tenantName = "default"
		}
		if !ValidTenant(tenantName) {
			http.Error(w, "cas: invalid tenant name", http.StatusBadRequest)
			return
		}
		rest, ok := strings.CutPrefix(r.URL.Path, "/cas/")
		if !ok {
			http.NotFound(w, r)
			return
		}
		kind, keyHex, ok := strings.Cut(rest, "/")
		if !ok {
			http.NotFound(w, r)
			return
		}
		key, err := ParseKey(keyHex)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		switch kind {
		case "blob":
			s.serveBlob(w, r, tenantName, key)
		case "action":
			s.serveAction(w, r, key)
		case "lease":
			s.serveLease(w, r, key)
		default:
			http.NotFound(w, r)
		}
	})
}

func (s *Server) serveBlob(w http.ResponseWriter, r *http.Request, tenantName string, key Key) {
	switch r.Method {
	case http.MethodGet:
		data, err := s.Get(tenantName, key)
		if err != nil {
			writeCASErr(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(data)
	case http.MethodHead:
		ok, err := s.Has(key)
		if err != nil {
			writeCASErr(w, err)
			return
		}
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusOK)
	case http.MethodPut:
		// MaxBytesReader both bounds the read and closes the connection on
		// an over-limit body, so a hostile uploader cannot stream past the
		// limit and a stalled one is bounded by the server's read timeouts.
		limit := s.opts.MaxBodyBytes
		if limit > maxBlobWire {
			limit = maxBlobWire
		}
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				s.ctrBodyReject.Inc()
				http.Error(w, "cas: blob exceeds body limit", http.StatusRequestEntityTooLarge)
				return
			}
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.Put(tenantName, key, data); err != nil {
			writeCASErr(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) serveAction(w http.ResponseWriter, r *http.Request, action Key) {
	switch r.Method {
	case http.MethodGet:
		blob, err := s.ActionGet(action)
		if err != nil {
			writeCASErr(w, err)
			return
		}
		fmt.Fprintf(w, "%s\n", blob)
	case http.MethodPut:
		body, err := io.ReadAll(io.LimitReader(r.Body, KeyHexLen+2))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		blob, err := ParseKey(strings.TrimSpace(string(body)))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.ActionPut(action, blob); err != nil {
			writeCASErr(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) serveLease(w http.ResponseWriter, r *http.Request, action Key) {
	switch r.Method {
	case http.MethodPost:
		res := s.Lease(r.Context().Done(), action)
		switch {
		case res.Leader:
			fmt.Fprintln(w, "leader")
		case res.Found:
			fmt.Fprintf(w, "found %s\n", res.Blob)
		default:
			fmt.Fprintln(w, "retry")
		}
	case http.MethodDelete:
		s.Abandon(action)
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// writeCASErr maps the sentinel errors onto the wire status codes.
func writeCASErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, ErrVerify):
		http.Error(w, err.Error(), http.StatusGone)
	case errors.Is(err, ErrQuota):
		http.Error(w, err.Error(), http.StatusInsufficientStorage)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
