package cas_test

// HTTPCAS network-adversity proofs at the client seam: the strict retry
// taxonomy (service verdicts are final on the first answer; only
// transport-class failures re-send), deadline budgets bounding stalls,
// hedged reads beating tail latency, and the full breaker lifecycle —
// trip, fast-fail, probe, recovery — driven end to end through real HTTP
// exchanges with a deterministic fault schedule and an injected clock.

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"statefulcc/internal/cas"
	"statefulcc/internal/obs"
)

// newCASBackend spins up a real cas.Server over MemCAS and returns its
// base URL plus the underlying store for tampering.
func newCASBackend(t *testing.T) (string, *cas.MemCAS) {
	t.Helper()
	mem := cas.NewMemCAS(0)
	srv := cas.NewServer(mem, cas.ServerOptions{Metrics: obs.NewRegistry()})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs.URL, mem
}

// exchangesFor counts logged exchanges whose path matches pred.
func exchangesFor(ft *cas.FaultTransport, method, path string) int {
	n := 0
	for _, c := range ft.Calls() {
		if c.Method == method && c.Path == path {
			n++
		}
	}
	return n
}

// TestHTTPCASVerdictsAreFinal: 404 misses, 410 verify refusals, and
// malformed action payloads each settle in exactly one wire exchange —
// none of them burns the retry budget.
func TestHTTPCASVerdictsAreFinal(t *testing.T) {
	url, mem := newCASBackend(t)
	ft := cas.NewFaultTransport(nil) // pure recorder
	reg := obs.NewRegistry()
	h := cas.NewHTTPCASOpts(url, "t", cas.HTTPOptions{Transport: ft, Backoff: time.Millisecond})
	h.SetMetrics(reg)

	// 404 miss.
	missKey := cas.Sum([]byte("absent"))
	if _, err := h.Get(missKey); !errors.Is(err, cas.ErrNotFound) {
		t.Fatalf("miss: err = %v, want ErrNotFound", err)
	}
	if n := exchangesFor(ft, "GET", "/cas/blob/"+missKey.String()); n != 1 {
		t.Fatalf("404 miss took %d exchanges, want 1", n)
	}

	// 410: the server refuses a blob whose stored bytes fail verification.
	key, data := cas.Sum([]byte("poisoned blob")), []byte("poisoned blob")
	if err := h.Put(key, data); err != nil {
		t.Fatal(err)
	}
	if !mem.Tamper(key, func(b []byte) { b[0] ^= 0xFF }) {
		t.Fatal("tamper failed")
	}
	if _, err := h.Get(key); !errors.Is(err, cas.ErrVerify) {
		t.Fatalf("poisoned: err = %v, want ErrVerify", err)
	}
	if n := exchangesFor(ft, "GET", "/cas/blob/"+key.String()); n != 1 {
		t.Fatalf("410 refusal took %d exchanges, want 1", n)
	}

	// Malformed action payload (a 200 whose body does not parse as a key):
	// detected locally, classified ErrVerify, still final.
	action := cas.Sum([]byte("action"))
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("certainly-not-a-key\n"))
	}))
	defer bad.Close()
	ftBad := cas.NewFaultTransport(nil)
	hBad := cas.NewHTTPCASOpts(bad.URL, "t", cas.HTTPOptions{Transport: ftBad, Backoff: time.Millisecond})
	if _, err := hBad.ActionGet(action); !errors.Is(err, cas.ErrVerify) {
		t.Fatalf("malformed action: err = %v, want ErrVerify", err)
	}
	if n := exchangesFor(ftBad, "GET", "/cas/action/"+action.String()); n != 1 {
		t.Fatalf("malformed action took %d exchanges, want 1", n)
	}

	if reg.Snapshot()[obs.CtrCASRetries] != 0 {
		t.Fatalf("service verdicts burned %d retries, want 0", reg.Snapshot()[obs.CtrCASRetries])
	}
}

// TestHTTPCASRetries5xx: 5xx responses are retryable and consume the full
// budget — one initial attempt plus Retries re-sends.
func TestHTTPCASRetries5xx(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	}))
	defer bad.Close()
	ft := cas.NewFaultTransport(nil)
	reg := obs.NewRegistry()
	h := cas.NewHTTPCASOpts(bad.URL, "t", cas.HTTPOptions{Transport: ft, Backoff: time.Millisecond})
	h.SetMetrics(reg)
	key := cas.Sum([]byte("x"))
	_, err := h.Get(key)
	if err == nil || errors.Is(err, cas.ErrNotFound) {
		t.Fatalf("all-503 Get: err = %v, want a surfaced 5xx failure", err)
	}
	if n := exchangesFor(ft, "GET", "/cas/blob/"+key.String()); n != 3 {
		t.Fatalf("all-503 Get took %d exchanges, want 3 (1 + 2 retries)", n)
	}
	m := reg.Snapshot()
	if m[obs.CtrCASRetries] != 2 {
		t.Fatalf("cas.retry = %d, want 2", m[obs.CtrCASRetries])
	}
	if m[obs.CtrCASNetErrors] != 3 {
		t.Fatalf("cas.net_error = %d, want 3", m[obs.CtrCASNetErrors])
	}
}

// TestHTTPCASBudgetBoundsStall: an indefinitely stalled exchange costs at
// most the fetch budget, and a blown deadline does not re-send (the
// budget is already gone).
func TestHTTPCASBudgetBoundsStall(t *testing.T) {
	url, _ := newCASBackend(t)
	ft := cas.NewFaultTransport(nil, cas.WithNetRules(cas.NetRule{
		Method: http.MethodGet, Kind: cas.NetStall,
	}))
	h := cas.NewHTTPCASOpts(url, "t", cas.HTTPOptions{
		Transport: ft, FetchBudget: 150 * time.Millisecond, Backoff: time.Millisecond,
	})
	key := cas.Sum([]byte("stalled"))
	start := time.Now()
	_, err := h.Get(key)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("stalled Get succeeded")
	}
	if elapsed >= 2*time.Second {
		t.Fatalf("stalled Get took %v, want bounded by the 150ms budget", elapsed)
	}
	if n := exchangesFor(ft, "GET", "/cas/blob/"+key.String()); n != 1 {
		t.Fatalf("blown budget re-sent: %d exchanges, want 1", n)
	}
}

// TestHTTPCASHedgedRead: a tail-latency spike on the primary read loses
// to the hedged duplicate; the result is correct and the win is counted.
func TestHTTPCASHedgedRead(t *testing.T) {
	url, _ := newCASBackend(t)
	key, data := cas.Sum([]byte("hedged blob")), []byte("hedged blob")
	setup := cas.NewHTTPCAS(url, "t")
	if err := setup.Put(key, data); err != nil {
		t.Fatal(err)
	}
	// Only the first GET of the blob (the primary) eats the spike; the
	// hedge is the second occurrence of the same (method, path) and flies
	// clean.
	ft := cas.NewFaultTransport(nil,
		cas.WithNetRules(cas.NetRule{Method: http.MethodGet, Path: "/cas/blob/*", Nth: 1, Kind: cas.NetLatency}),
		cas.WithNetLatency(500*time.Millisecond))
	reg := obs.NewRegistry()
	h := cas.NewHTTPCASOpts(url, "t", cas.HTTPOptions{
		Transport: ft, HedgeAfter: 20 * time.Millisecond, Backoff: time.Millisecond,
	})
	h.SetMetrics(reg)
	start := time.Now()
	got, err := h.Get(key)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("hedged Get returned wrong bytes: %q", got)
	}
	if elapsed >= 450*time.Millisecond {
		t.Fatalf("hedged Get took %v — the hedge did not beat the 500ms spike", elapsed)
	}
	m := reg.Snapshot()
	if m[obs.CtrCASHedged] != 1 || m[obs.CtrCASHedgeWins] != 1 {
		t.Fatalf("hedged/hedge_won = %d/%d, want 1/1", m[obs.CtrCASHedged], m[obs.CtrCASHedgeWins])
	}
}

// TestHTTPCASBreakerLifecycle drives the breaker through its whole life
// over real HTTP: five refused exchanges trip it, open requests fast-fail
// without touching the wire, the cooldown admits a single probe, and the
// probe's success restores full service — all deterministic under the
// injected clock and visible in the metrics registry.
func TestHTTPCASBreakerLifecycle(t *testing.T) {
	url, _ := newCASBackend(t)
	key, data := cas.Sum([]byte("lifecycle blob")), []byte("lifecycle blob")

	clock := newFakeClock()
	var tl transitionLog
	// The first five GETs of the blob are refused; everything after (and
	// the setup PUT) is clean.
	ft := cas.NewFaultTransport(nil, cas.WithNetRules(cas.NetRule{
		Method: http.MethodGet, Path: "/cas/blob/*", Nth: 1, Count: 5, Kind: cas.NetRefused,
	}))
	reg := obs.NewRegistry()
	h := cas.NewHTTPCASOpts(url, "t", cas.HTTPOptions{
		Transport: ft, Backoff: time.Millisecond,
		Breaker: cas.BreakerOptions{Now: clock.Now, OnTransition: tl.hook},
	})
	h.SetMetrics(reg)
	if err := h.Put(key, data); err != nil {
		t.Fatal(err)
	}

	// Get #1: three refused exchanges (attempt + 2 retries), consec = 3.
	if _, err := h.Get(key); !errors.Is(err, cas.ErrNetInjected) {
		t.Fatalf("Get #1: err = %v, want injected refusal", err)
	}
	if got := h.BreakerState(); got != cas.BreakerClosed {
		t.Fatalf("state after 3 failures = %v, want closed", got)
	}

	// Get #2: exchanges 4 and 5 refuse — the 5th trips the breaker — and
	// the final retry fast-fails on the open breaker without a wire trip.
	if _, err := h.Get(key); !errors.Is(err, cas.ErrUnavailable) {
		t.Fatalf("Get #2: err = %v, want ErrUnavailable from the open breaker", err)
	}
	if got := h.BreakerState(); got != cas.BreakerOpen {
		t.Fatalf("state after 5 failures = %v, want open", got)
	}
	wire := exchangesFor(ft, "GET", "/cas/blob/"+key.String())
	if wire != 5 {
		t.Fatalf("wire exchanges before fast-fail = %d, want 5", wire)
	}

	// Get #3 (cooldown not elapsed): pure fast-fail, zero wire traffic.
	if _, err := h.Get(key); !errors.Is(err, cas.ErrUnavailable) {
		t.Fatalf("Get #3: err = %v, want ErrUnavailable", err)
	}
	if n := exchangesFor(ft, "GET", "/cas/blob/"+key.String()); n != wire {
		t.Fatalf("open breaker touched the wire: %d exchanges, had %d", n, wire)
	}

	// Cooldown elapses: the next Get is the probe, the backend is healthy
	// again (the rule's window is spent), and service is restored.
	clock.Advance(3 * time.Second)
	got, err := h.Get(key)
	if err != nil {
		t.Fatalf("probe Get failed: %v", err)
	}
	if string(got) != string(data) {
		t.Fatalf("probe Get returned wrong bytes: %q", got)
	}
	if state := h.BreakerState(); state != cas.BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", state)
	}

	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	if gotTL := tl.snapshot(); !equalStrings(gotTL, want) {
		t.Fatalf("transitions = %v, want %v", gotTL, want)
	}
	m := reg.Snapshot()
	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{obs.CtrCASBreakerTrips, m[obs.CtrCASBreakerTrips], 1},
		{obs.CtrCASBreakerProbes, m[obs.CtrCASBreakerProbes], 1},
		{obs.CtrCASBreakerRecovered, m[obs.CtrCASBreakerRecovered], 1},
		{obs.CtrCASNetErrors, m[obs.CtrCASNetErrors], 5},
		{obs.CtrCASRetries, m[obs.CtrCASRetries], 4},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if m[obs.CtrCASBreakerOpen] < 2 {
		t.Errorf("%s = %d, want >= 2 fast-fails", obs.CtrCASBreakerOpen, m[obs.CtrCASBreakerOpen])
	}
}
