// Package filecheck implements a small LLVM-FileCheck-style matcher used by
// the pass test corpus (internal/passes/testdata): MiniC test files embed
// directives in comments, the harness runs the requested pipeline, prints
// the resulting IR, and this package verifies the directives against it.
//
// Supported directives:
//
//	// RUN: pipeline=<pass>,<pass>,...   which passes to run (one per file)
//	// RUN: func=<name>                  restrict printing to one function
//	// CHECK: <substring>                must match, in order
//	// CHECK-NOT: <substring>            must not appear between the
//	                                     surrounding CHECK anchors
//	// CHECK-COUNT-<n>: <substring>      exactly n occurrences in the whole
//	                                     output (order-independent)
package filecheck

import (
	"fmt"
	"strconv"
	"strings"
)

// Script is the parsed directive list of one test file.
type Script struct {
	// Pipeline names the passes to run.
	Pipeline []string
	// Func optionally restricts checking to one function's printout.
	Func   string
	checks []check
	counts []countCheck
}

type checkKind int

const (
	checkMatch checkKind = iota
	checkNot
)

type check struct {
	kind checkKind
	text string
	line int
}

type countCheck struct {
	n    int
	text string
	line int
}

// Parse extracts directives from a test file's comments.
func Parse(src string) (*Script, error) {
	s := &Script{}
	for i, line := range strings.Split(src, "\n") {
		lineNo := i + 1
		idx := strings.Index(line, "//")
		if idx < 0 {
			continue
		}
		directive := strings.TrimSpace(line[idx+2:])
		switch {
		case strings.HasPrefix(directive, "RUN:"):
			arg := strings.TrimSpace(strings.TrimPrefix(directive, "RUN:"))
			switch {
			case strings.HasPrefix(arg, "pipeline="):
				if len(s.Pipeline) > 0 {
					return nil, fmt.Errorf("line %d: duplicate pipeline directive", lineNo)
				}
				for _, p := range strings.Split(strings.TrimPrefix(arg, "pipeline="), ",") {
					if p = strings.TrimSpace(p); p != "" {
						s.Pipeline = append(s.Pipeline, p)
					}
				}
			case strings.HasPrefix(arg, "func="):
				s.Func = strings.TrimSpace(strings.TrimPrefix(arg, "func="))
			default:
				return nil, fmt.Errorf("line %d: unknown RUN argument %q", lineNo, arg)
			}
		case strings.HasPrefix(directive, "CHECK-NOT:"):
			s.checks = append(s.checks, check{checkNot,
				strings.TrimSpace(strings.TrimPrefix(directive, "CHECK-NOT:")), lineNo})
		case strings.HasPrefix(directive, "CHECK-COUNT-"):
			rest := strings.TrimPrefix(directive, "CHECK-COUNT-")
			colon := strings.Index(rest, ":")
			if colon < 0 {
				return nil, fmt.Errorf("line %d: malformed CHECK-COUNT", lineNo)
			}
			n, err := strconv.Atoi(rest[:colon])
			if err != nil {
				return nil, fmt.Errorf("line %d: bad CHECK-COUNT number: %v", lineNo, err)
			}
			s.counts = append(s.counts, countCheck{n, strings.TrimSpace(rest[colon+1:]), lineNo})
		case strings.HasPrefix(directive, "CHECK:"):
			s.checks = append(s.checks, check{checkMatch,
				strings.TrimSpace(strings.TrimPrefix(directive, "CHECK:")), lineNo})
		}
	}
	if len(s.Pipeline) == 0 && (len(s.checks) > 0 || len(s.counts) > 0) {
		return nil, fmt.Errorf("checks present but no RUN: pipeline directive")
	}
	return s, nil
}

// HasChecks reports whether the script contains any assertions.
func (s *Script) HasChecks() bool { return len(s.checks) > 0 || len(s.counts) > 0 }

// Verify matches the directives against the output, returning the first
// failure (nil on success).
func (s *Script) Verify(output string) error {
	// Sequential CHECK / CHECK-NOT semantics.
	pos := 0
	var pendingNots []check
	flushNots := func(until int) error {
		segment := output[pos:until]
		for _, n := range pendingNots {
			if strings.Contains(segment, n.text) {
				return fmt.Errorf("line %d: CHECK-NOT: %q found:\n%s", n.line, n.text, segment)
			}
		}
		pendingNots = pendingNots[:0]
		return nil
	}
	for _, c := range s.checks {
		switch c.kind {
		case checkNot:
			pendingNots = append(pendingNots, c)
		case checkMatch:
			idx := strings.Index(output[pos:], c.text)
			if idx < 0 {
				return fmt.Errorf("line %d: CHECK: %q not found after offset %d:\n%s",
					c.line, c.text, pos, output)
			}
			if err := flushNots(pos + idx); err != nil {
				return err
			}
			pos += idx + len(c.text)
		}
	}
	if err := flushNots(len(output)); err != nil {
		return err
	}
	for _, cc := range s.counts {
		if got := strings.Count(output, cc.text); got != cc.n {
			return fmt.Errorf("line %d: CHECK-COUNT-%d: %q occurs %d times:\n%s",
				cc.line, cc.n, cc.text, got, output)
		}
	}
	return nil
}
