package filecheck

import (
	"strings"
	"testing"
)

func TestParseDirectives(t *testing.T) {
	s, err := Parse(`
// RUN: pipeline=mem2reg, gvn ,dce
// RUN: func=work
func work() { } // CHECK: add
// CHECK-NOT: mul
// CHECK-COUNT-2: load
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Pipeline) != 3 || s.Pipeline[1] != "gvn" {
		t.Errorf("pipeline = %v", s.Pipeline)
	}
	if s.Func != "work" {
		t.Errorf("func = %q", s.Func)
	}
	if !s.HasChecks() {
		t.Error("checks not detected")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"// CHECK: x",                            // checks without pipeline
		"// RUN: pipeline=a\n// RUN: pipeline=b", // duplicate
		"// RUN: frobnicate=yes",                 // unknown arg
		"// RUN: pipeline=a\n// CHECK-COUNT-x: y",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

func mustScript(t *testing.T, src string) *Script {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestVerifyOrdering(t *testing.T) {
	s := mustScript(t, `
// RUN: pipeline=x
// CHECK: alpha
// CHECK: beta
`)
	if err := s.Verify("...alpha...beta..."); err != nil {
		t.Errorf("in-order match failed: %v", err)
	}
	if err := s.Verify("...beta...alpha..."); err == nil {
		t.Error("out-of-order match accepted")
	}
	if err := s.Verify("...alpha..."); err == nil {
		t.Error("missing match accepted")
	}
	// A single occurrence cannot satisfy two sequential CHECKs.
	s2 := mustScript(t, "// RUN: pipeline=x\n// CHECK: dup\n// CHECK: dup\n")
	if err := s2.Verify("dup"); err == nil {
		t.Error("single occurrence satisfied two CHECKs")
	}
	if err := s2.Verify("dup dup"); err != nil {
		t.Errorf("two occurrences rejected: %v", err)
	}
}

func TestVerifyNot(t *testing.T) {
	s := mustScript(t, `
// RUN: pipeline=x
// CHECK: start
// CHECK-NOT: forbidden
// CHECK: end
`)
	if err := s.Verify("start middle end"); err != nil {
		t.Errorf("clean output rejected: %v", err)
	}
	if err := s.Verify("start forbidden end"); err == nil {
		t.Error("forbidden text between anchors accepted")
	}
	// Forbidden text BEFORE the first anchor is fine (LLVM semantics).
	if err := s.Verify("forbidden start middle end"); err != nil {
		t.Errorf("pre-anchor text rejected: %v", err)
	}
	// Trailing NOT applies to the rest of the output.
	s2 := mustScript(t, "// RUN: pipeline=x\n// CHECK: a\n// CHECK-NOT: z\n")
	if err := s2.Verify("a then z"); err == nil {
		t.Error("trailing CHECK-NOT ignored")
	}
}

func TestVerifyCount(t *testing.T) {
	s := mustScript(t, "// RUN: pipeline=x\n// CHECK-COUNT-2: ld\n")
	if err := s.Verify("ld ld"); err != nil {
		t.Errorf("exact count rejected: %v", err)
	}
	for _, out := range []string{"ld", "ld ld ld"} {
		if err := s.Verify(out); err == nil {
			t.Errorf("%q: wrong count accepted", out)
		}
	}
}

func TestErrorsNameLines(t *testing.T) {
	s := mustScript(t, "// RUN: pipeline=x\n\n\n// CHECK: missing\n")
	err := s.Verify("nothing here")
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Errorf("error does not cite the directive line: %v", err)
	}
}
