package fingerprint_test

// Microbenchmarks for the three fingerprinting regimes the driver mixes:
// the retired flat walk (the pre-hierarchy cost reference), a cold memo
// (first sight of a function in a Run), and a warm memo (unchanged IR).
// `go test ./internal/fingerprint -bench . -cpuprofile cpu.pprof` is the
// profiling entry point for hot-path work.

import (
	"testing"

	"statefulcc/internal/compiler"
	"statefulcc/internal/fingerprint"
	"statefulcc/internal/ir"
	"statefulcc/internal/workload"
)

func benchModule(b *testing.B) *ir.Module {
	b.Helper()
	p := workload.StandardSuite()[0]
	snap := workload.Generate(p)
	unit := snap.Units()[0]
	m, err := compiler.Frontend(unit, snap[unit])
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkLegacyFunction(b *testing.B) {
	m := benchModule(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range m.Funcs {
			fingerprint.LegacyFunction(f)
		}
	}
}

func BenchmarkFunctionNoMemo(b *testing.B) {
	m := benchModule(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range m.Funcs {
			fingerprint.Function(f)
		}
	}
}

func BenchmarkColdMemo(b *testing.B) {
	m := benchModule(b)
	memo := fingerprint.NewMemo()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		memo.Reset()
		for _, f := range m.Funcs {
			fingerprint.FunctionWith(f, memo)
		}
	}
}

func BenchmarkWarmMemo(b *testing.B) {
	m := benchModule(b)
	memo := fingerprint.NewMemo()
	for _, f := range m.Funcs {
		fingerprint.FunctionWith(f, memo)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range m.Funcs {
			fingerprint.FunctionWith(f, memo)
		}
	}
}
