package fingerprint_test

import (
	"testing"
	"testing/quick"

	"statefulcc/internal/fingerprint"
	"statefulcc/internal/ir"
	"statefulcc/internal/passes"
	"statefulcc/internal/testutil"
	"statefulcc/internal/workload"
)

const probeSrc = `
var g int = 5;
func helper(x int) int { return x * 3 + g; }
func work(n int) int {
    var s int = 0;
    for var i int = 0; i < n; i++ {
        if i % 2 == 0 { s += helper(i); } else { s -= i; }
    }
    return s;
}
func main() int { return work(10); }
`

func buildProbe(t *testing.T) *ir.Module {
	t.Helper()
	m, err := testutil.BuildModule("p.mc", probeSrc)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestStabilityAcrossRebuilds: the same source lowered twice must produce
// identical fingerprints — the property that makes dormancy records valid
// across builds.
func TestStabilityAcrossRebuilds(t *testing.T) {
	m1, m2 := buildProbe(t), buildProbe(t)
	if fingerprint.Module(m1) != fingerprint.Module(m2) {
		t.Fatal("module fingerprint unstable across identical rebuilds")
	}
	for i := range m1.Funcs {
		if fingerprint.Function(m1.Funcs[i]) != fingerprint.Function(m2.Funcs[i]) {
			t.Errorf("function %s fingerprint unstable", m1.Funcs[i].Name)
		}
	}
}

// TestStabilityThroughPipeline: deterministic optimization must yield the
// same post-pipeline fingerprints on every compile.
func TestStabilityThroughPipeline(t *testing.T) {
	h := func() uint64 {
		m := buildProbe(t)
		if _, err := passes.RunPipeline(m, passes.StandardPipeline); err != nil {
			t.Fatal(err)
		}
		return fingerprint.Module(m)
	}
	if h() != h() {
		t.Fatal("post-pipeline fingerprint unstable")
	}
}

// TestSensitivity: every observable mutation must change the fingerprint.
func TestSensitivity(t *testing.T) {
	base := fingerprint.Function(buildProbe(t).FindFunc("work"))

	mutate := func(name string, fn func(f *ir.Func)) {
		m := buildProbe(t)
		f := m.FindFunc("work")
		fn(f)
		if fingerprint.Function(f) == base {
			t.Errorf("mutation %q not detected by fingerprint", name)
		}
	}

	mutate("constant value", func(f *ir.Func) {
		f.ForEachValue(func(v *ir.Value) {
			for _, a := range v.Args {
				if c, ok := a.IsConst(); ok && c == 2 {
					a.Aux = 4
				}
			}
		})
	})
	mutate("opcode", func(f *ir.Func) {
		f.ForEachValue(func(v *ir.Value) {
			if v.Op == ir.OpAdd {
				v.Op = ir.OpSub
			}
		})
	})
	mutate("callee name", func(f *ir.Func) {
		f.ForEachValue(func(v *ir.Value) {
			if v.Op == ir.OpCall {
				v.Sym = "other"
			}
		})
	})
	mutate("swap branch targets", func(f *ir.Func) {
		for _, b := range f.Blocks {
			if b.Term.Op == ir.OpBranch {
				b.Term.Blocks[0], b.Term.Blocks[1] = b.Term.Blocks[1], b.Term.Blocks[0]
				return
			}
		}
	})
	mutate("append instruction", func(f *ir.Func) {
		e := f.Entry()
		e.AddInstr(f.NewValue(ir.OpAdd, ir.TInt, f.ConstInt(1), f.ConstInt(2)))
	})
	mutate("function name", func(f *ir.Func) { f.Name = "renamed" })
}

// TestPhiOperandOrderInsensitive: phi operand order tracks pred-list
// maintenance, not semantics, so permuting (value, block) pairs together
// must not change the hash.
func TestPhiOperandOrderInsensitive(t *testing.T) {
	m := buildProbe(t)
	// mem2reg introduces phis.
	p, err := passes.NewFuncPass("mem2reg")
	if err != nil {
		t.Fatal(err)
	}
	f := m.FindFunc("work")
	p.Run(f)

	var phi *ir.Value
	for _, b := range f.Blocks {
		if len(b.Phis) > 0 && len(b.Phis[0].Args) >= 2 {
			phi = b.Phis[0]
			break
		}
	}
	if phi == nil {
		t.Skip("no multi-operand phi")
	}
	before := fingerprint.Function(f)
	phi.Args[0], phi.Args[1] = phi.Args[1], phi.Args[0]
	phi.Blocks[0], phi.Blocks[1] = phi.Blocks[1], phi.Blocks[0]
	if fingerprint.Function(f) != before {
		t.Error("paired phi permutation changed the fingerprint")
	}
	// Swapping values WITHOUT blocks is a semantic change and must differ.
	phi.Args[0], phi.Args[1] = phi.Args[1], phi.Args[0]
	if fingerprint.Function(f) == before {
		t.Error("semantic phi change not detected")
	}
}

// TestPredOrderInsensitive: reordering a pred list (with no other change)
// must not change the hash.
func TestPredOrderInsensitive(t *testing.T) {
	m := buildProbe(t)
	f := m.FindFunc("work")
	var b *ir.Block
	for _, blk := range f.Blocks {
		if len(blk.Preds) >= 2 && len(blk.Phis) == 0 {
			b = blk
			break
		}
	}
	if b == nil {
		t.Skip("no phi-free multi-pred block")
	}
	before := fingerprint.Function(f)
	b.Preds[0], b.Preds[1] = b.Preds[1], b.Preds[0]
	if fingerprint.Function(f) != before {
		t.Error("pred-list order leaked into the fingerprint")
	}
}

// TestModuleOrderInsensitive: function declaration order must not matter to
// the module hash (module passes see a set, not a list).
func TestModuleOrderInsensitive(t *testing.T) {
	m := buildProbe(t)
	before := fingerprint.Module(m)
	m.Funcs[0], m.Funcs[1] = m.Funcs[1], m.Funcs[0]
	if fingerprint.Module(m) != before {
		t.Error("function order leaked into module fingerprint")
	}
}

// TestHasherProperties uses testing/quick for hash-combinator laws.
func TestHasherProperties(t *testing.T) {
	// Different inputs rarely collide (smoke, not crypto).
	inj := func(a, b uint64) bool {
		if a == b {
			return true
		}
		h1 := fingerprint.New()
		h1.Uint64(a)
		h2 := fingerprint.New()
		h2.Uint64(b)
		return h1.Sum() != h2.Sum()
	}
	if err := quick.Check(inj, nil); err != nil {
		t.Error(err)
	}
	// Order matters for sequential folding.
	orderMatters := func(a, b uint64) bool {
		if a == b {
			return true
		}
		h1 := fingerprint.New()
		h1.Uint64(a)
		h1.Uint64(b)
		h2 := fingerprint.New()
		h2.Uint64(b)
		h2.Uint64(a)
		return h1.Sum() != h2.Sum()
	}
	if err := quick.Check(orderMatters, nil); err != nil {
		t.Error(err)
	}
	// String hashing distinguishes length boundaries ("ab","c" vs "a","bc").
	concat := func(a, b string) bool {
		h1 := fingerprint.New()
		h1.String(a)
		h1.String(b)
		h2 := fingerprint.New()
		h2.String(a + b)
		if len(b) == 0 {
			return true
		}
		return h1.Sum() != h2.Sum()
	}
	if err := quick.Check(concat, nil); err != nil {
		t.Error(err)
	}
}

// TestGeneratedCorpusUniqueness: across a generated project, distinct
// functions must (with overwhelming probability) have distinct hashes.
func TestGeneratedCorpusUniqueness(t *testing.T) {
	snap := workload.Generate(workload.StandardSuite()[1])
	seen := map[uint64]string{}
	for _, unit := range snap.Units() {
		m, err := testutil.BuildModule(unit, string(snap[unit]))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range m.Funcs {
			h := fingerprint.Function(f)
			if prev, dup := seen[h]; dup {
				t.Errorf("collision: %s and %s/%s share %016x", prev, unit, f.Name, h)
			}
			seen[h] = unit + "/" + f.Name
		}
	}
	if len(seen) < 20 {
		t.Fatalf("corpus too small: %d functions", len(seen))
	}
}

// TestStringsHash covers the pipeline-config hash helper.
func TestStringsHash(t *testing.T) {
	a := fingerprint.Strings([]string{"a", "b"})
	b := fingerprint.Strings([]string{"ab"})
	c := fingerprint.Strings([]string{"b", "a"})
	if a == b || a == c {
		t.Error("Strings hash conflates distinct lists")
	}
	if fingerprint.Strings(nil) == a {
		t.Error("empty list collides")
	}
}
