package fingerprint_test

// Native fuzz target for the fingerprint function — the correctness
// linchpin of the whole stateful design. Two properties are fuzzed:
//
//  1. Stability: structurally equal IR (same source parsed twice, or a
//     deep clone) must produce identical per-function and module
//     fingerprints. A violation means spurious recompiles at best and
//     nondeterministic dormancy records at worst.
//  2. Sensitivity: if mutating the source changes a function's printed
//     IR, that function's fingerprint must change too. A violation means
//     a real edit could be treated as "unchanged" and a stale dormancy
//     record would skip passes that now matter — silent miscompilation.
//
// Run with: go test -fuzz FuzzFingerprintStability ./internal/fingerprint

import (
	"strings"
	"testing"

	"statefulcc/internal/fingerprint"
	"statefulcc/internal/ir"
	"statefulcc/internal/testutil"
)

func FuzzFingerprintStability(f *testing.F) {
	f.Add("func main() int { return 42; }")
	f.Add("const K = 7;\nfunc main() int { var x int = K * 6; return x; }")
	f.Add(`
func helper(n int) int {
    var s int = 0;
    for var i int = 0; i < n; i++ { s += i * i; }
    return s;
}
func main() int { print("h", helper(9)); return 0; }
`)
	f.Add(`
var g int = 3;
func twice(x int) int { return x * 2; }
func main() int {
    if g > 2 { g = twice(g); } else { g = 0; }
    while g > 10 { g -= 4; }
    return g;
}
`)
	f.Add(`
func pick(a int, b int, c bool) int {
    if c { return a; }
    return b;
}
func main() int {
    var arr [4]int;
    arr[0] = pick(1, 2, true);
    arr[1] = pick(3, 4, false);
    return arr[0] + arr[1];
}
`)

	f.Fuzz(func(t *testing.T, src string) {
		m1, err := testutil.BuildModule("fuzz.mc", src)
		if err != nil {
			t.Skip() // not a valid MiniC program; nothing to fingerprint
		}
		m2, err := testutil.BuildModule("fuzz.mc", src)
		if err != nil {
			t.Fatalf("second parse of accepted input failed: %v", err)
		}

		// Property 1a: re-parsing the same source reproduces every hash.
		if h1, h2 := fingerprint.Module(m1), fingerprint.Module(m2); h1 != h2 {
			t.Fatalf("module fingerprint unstable across parses: %016x vs %016x", h1, h2)
		}
		fns2 := map[string]*ir.Func{}
		for _, fn := range m2.Funcs {
			fns2[fn.Name] = fn
		}
		for _, fn := range m1.Funcs {
			other, ok := fns2[fn.Name]
			if !ok {
				t.Fatalf("function %s missing from second parse", fn.Name)
			}
			if h1, h2 := fingerprint.Function(fn), fingerprint.Function(other); h1 != h2 {
				t.Fatalf("function %s fingerprint unstable across parses: %016x vs %016x", fn.Name, h1, h2)
			}
			// Property 1b: a deep clone hashes identically to its source.
			if hc := fingerprint.Function(ir.CloneFunc(fn)); hc != fingerprint.Function(fn) {
				t.Fatalf("function %s clone fingerprint differs", fn.Name)
			}
		}
		if hc := fingerprint.Module(ir.CloneModule(m1)); hc != fingerprint.Module(m1) {
			t.Fatal("module clone fingerprint differs")
		}

		// Property 2: flip one digit in the source; every function whose
		// printed IR changed must change its fingerprint.
		mutated := mutateDigit(src)
		if mutated == src {
			return
		}
		m3, err := testutil.BuildModule("fuzz.mc", mutated)
		if err != nil {
			return // mutation broke the program; sensitivity is moot
		}
		fns3 := map[string]*ir.Func{}
		for _, fn := range m3.Funcs {
			fns3[fn.Name] = fn
		}
		for _, fn := range m1.Funcs {
			other, ok := fns3[fn.Name]
			if !ok {
				continue
			}
			if fn.String() != other.String() && fingerprint.Function(fn) == fingerprint.Function(other) {
				t.Fatalf("function %s: IR differs but fingerprint collides\n--- before ---\n%s\n--- after ---\n%s",
					fn.Name, fn.String(), other.String())
			}
		}
		if m1.String() != m3.String() && fingerprint.Module(m1) == fingerprint.Module(m3) {
			t.Fatal("module IR differs but module fingerprint collides")
		}
	})
}

// mutateDigit replaces the first decimal digit in src with a different
// one, a minimal semantics-affecting edit that usually still parses.
func mutateDigit(src string) string {
	if i := strings.IndexAny(src, "0123456789"); i >= 0 {
		repl := byte('1')
		if src[i] == '1' {
			repl = '2'
		}
		return src[:i] + string(repl) + src[i+1:]
	}
	return src
}
