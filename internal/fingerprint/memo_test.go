package fingerprint_test

// Tests for the hierarchical fingerprint memo: the memoized path must be
// indistinguishable from the memo-free reference (Function) across every
// pass-driven mutation, and the warm path must be allocation-free — the
// two properties the hot-path optimisation rests on.

import (
	"fmt"
	"testing"

	"statefulcc/internal/fingerprint"
	"statefulcc/internal/ir"
	"statefulcc/internal/passes"
	"statefulcc/internal/project"
	"statefulcc/internal/testutil"
	"statefulcc/internal/workload"
)

// TestMemoMatchesReferenceThroughPipeline runs every standard pass over a
// module, fingerprinting every function through one long-lived memo after
// each pass, and cross-checks against the memo-free reference. Any pass
// that mutates IR without advancing the generation counters diverges here.
func TestMemoMatchesReferenceThroughPipeline(t *testing.T) {
	m := buildProbe(t)
	memo := fingerprint.NewMemo()
	check := func(stage string) {
		t.Helper()
		for _, f := range m.Funcs {
			got := fingerprint.FunctionWith(f, memo)
			want := fingerprint.Function(f)
			if got != want {
				t.Fatalf("%s: memoized fingerprint of %s diverged: %#x != %#x",
					stage, f.Name, got, want)
			}
		}
	}
	check("initial")
	for _, name := range passes.StandardPipeline {
		info, ok := passes.Lookup(name)
		if !ok || !info.FunctionLocal && info.Module {
			continue // module passes splice freely; the driver deep-clears for them
		}
		fp, ok := info.New().(passes.FuncPass)
		if !ok {
			continue
		}
		for _, f := range m.Funcs {
			fp.Run(f)
		}
		check(name)
	}
}

// TestMemoMatchesReferenceOverHistory repeats the differential check over
// generated edit histories — varied shapes the handwritten probe cannot
// cover.
func TestMemoMatchesReferenceOverHistory(t *testing.T) {
	p := workload.StandardSuite()[0]
	base := workload.Generate(p)
	hist := workload.GenerateHistory(base, p.Seed, 6, workload.DefaultCommitOptions())
	memo := fingerprint.NewMemo()
	for ci, snap := range append([]project.Snapshot{base}, hist.Commits...) {
		for unit, src := range snap {
			m, err := testutil.BuildModule(unit, string(src))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := passes.RunPipeline(m, passes.StandardPipeline); err != nil {
				t.Fatal(err)
			}
			// Fresh functions re-enter the same memo: the second pass over
			// each function is fully memoized and must still agree.
			for round := 0; round < 2; round++ {
				for _, f := range m.Funcs {
					if got, want := fingerprint.FunctionWith(f, memo), fingerprint.Function(f); got != want {
						t.Fatalf("commit %d unit %s round %d: %s diverged: %#x != %#x",
							ci, unit, round, f.Name, got, want)
					}
				}
			}
			memo.Reset() // the driver's cross-Run discipline
		}
	}
}

// TestMemoCountersMove pins the observability contract: a warm
// re-fingerprint serves every block from the memo, and an edit rehashes
// only the touched block.
func TestMemoCountersMove(t *testing.T) {
	m := buildProbe(t)
	f := m.FindFunc("work")
	memo := fingerprint.NewMemo()

	fingerprint.FunctionWith(f, memo)
	if memo.BlocksRehashed != int64(len(f.Blocks)) || memo.BlocksMemoized != 0 {
		t.Fatalf("cold fingerprint: rehashed=%d memoized=%d, want %d/0",
			memo.BlocksRehashed, memo.BlocksMemoized, len(f.Blocks))
	}
	fingerprint.FunctionWith(f, memo)
	if memo.BlocksMemoized != int64(len(f.Blocks)) {
		t.Fatalf("warm fingerprint memoized %d blocks, want %d", memo.BlocksMemoized, len(f.Blocks))
	}

	// Content-touch one block: exactly that block rehashes.
	r0, m0 := memo.BlocksRehashed, memo.BlocksMemoized
	f.Blocks[0].Touch()
	fingerprint.FunctionWith(f, memo)
	if got := memo.BlocksRehashed - r0; got != 1 {
		t.Fatalf("after touching one block, %d blocks rehashed, want 1", got)
	}
	if got := memo.BlocksMemoized - m0; got != int64(len(f.Blocks)-1) {
		t.Fatalf("after touching one block, %d blocks memoized, want %d", got, len(f.Blocks)-1)
	}
}

// TestWarmFingerprintAllocsFree is the allocation-regression pin for the
// hot path: re-fingerprinting an unchanged function through a warm memo
// must not allocate (pooled scratch, no per-call garbage).
func TestWarmFingerprintAllocsFree(t *testing.T) {
	m := buildProbe(t)
	memo := fingerprint.NewMemo()
	for _, f := range m.Funcs {
		fingerprint.FunctionWith(f, memo)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, f := range m.Funcs {
			fingerprint.FunctionWith(f, memo)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm memoized fingerprinting allocates %.1f objects/run, want 0", allocs)
	}
}

// TestMemoInvalidate pins Invalidate: dropping one function's entries
// forces its blocks to rehash while other functions stay memoized.
func TestMemoInvalidate(t *testing.T) {
	m := buildProbe(t)
	memo := fingerprint.NewMemo()
	for _, f := range m.Funcs {
		fingerprint.FunctionWith(f, memo)
	}
	target := m.FindFunc("work")
	memo.Invalidate(target)
	r0 := memo.BlocksRehashed
	for _, f := range m.Funcs {
		fingerprint.FunctionWith(f, memo)
	}
	if got := memo.BlocksRehashed - r0; got != int64(len(target.Blocks)) {
		t.Fatalf("after Invalidate(work), %d blocks rehashed, want %d (work's blocks only)",
			got, len(target.Blocks))
	}
}

// TestLegacyFunctionStable pins the retained benchmark-only reference: the
// old flat algorithm must stay deterministic and sensitive so layout
// comparisons remain meaningful.
func TestLegacyFunctionStable(t *testing.T) {
	m1, m2 := buildProbe(t), buildProbe(t)
	for i := range m1.Funcs {
		if fingerprint.LegacyFunction(m1.Funcs[i]) != fingerprint.LegacyFunction(m2.Funcs[i]) {
			t.Errorf("LegacyFunction unstable on %s", m1.Funcs[i].Name)
		}
	}
	f := m1.FindFunc("work")
	before := fingerprint.LegacyFunction(f)
	f.Blocks[0].AddInstr(f.NewValue(ir.OpConst, ir.TInt))
	if fingerprint.LegacyFunction(f) == before {
		t.Error("LegacyFunction insensitive to an added instruction")
	}
}

// TestHasherPoolReset pins the pooled-hasher contract: a hasher from the
// pool behaves like a fresh one regardless of prior use.
func TestHasherPoolReset(t *testing.T) {
	h1 := fingerprint.Get()
	h1.Int(42)
	h1.String("dirty")
	fingerprint.Put(h1)

	h2 := fingerprint.Get()
	defer fingerprint.Put(h2)
	ref := fingerprint.New()
	for i := 0; i < 3; i++ {
		s := fmt.Sprintf("probe-%d", i)
		h2.String(s)
		ref.String(s)
	}
	if h2.Sum() != ref.Sum() {
		t.Fatal("pooled hasher not equivalent to a fresh hasher after Put/Get")
	}
}
