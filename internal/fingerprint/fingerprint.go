// Package fingerprint computes stable structural hashes of IR.
//
// The hash is the identity the stateful compiler's dormancy records are
// keyed by, so it must satisfy two properties:
//
//   - Stability: rebuilding identical source in a fresh process yields the
//     same hash — nothing position-, pointer-, or map-order-dependent may
//     leak in. Value references are therefore renumbered densely in
//     traversal order, and blocks are referenced by layout index.
//
//   - Sensitivity: any change a pass could observe must change the hash —
//     opcodes, types, operands, constants, callee names, block structure,
//     phi wiring.
//
// The underlying hash is FNV-1a (64-bit), chosen because dormancy records
// are advisory identities within a trusted cache, not security boundaries,
// and hashing sits on the hot path of every incremental compile.
package fingerprint

import (
	"sort"

	"statefulcc/internal/ir"
)

const seedOffset = 14695981039346656037

// Hasher accumulates a word-oriented mixing hash over typed fields. Each
// 64-bit word costs one xor plus a splitmix64 finalizer round — roughly
// 30× cheaper than byte-wise FNV on the instruction encodings this package
// hashes, which matters because fingerprinting sits on the incremental
// compile hot path.
type Hasher struct {
	h uint64
}

// New returns a fresh hasher.
func New() *Hasher { return &Hasher{h: seedOffset} }

// Sum returns the current hash value.
func (h *Hasher) Sum() uint64 { return mix64(h.h) }

// Byte folds one byte into the hash.
func (h *Hasher) Byte(b byte) {
	h.Uint64(uint64(b) | 0x100)
}

// Uint64 folds a 64-bit value.
func (h *Hasher) Uint64(v uint64) {
	h.h = mix64(h.h ^ mix64(v+0x9e3779b97f4a7c15))
}

// Int folds a signed integer.
func (h *Hasher) Int(v int64) { h.Uint64(uint64(v)) }

// String folds a length-prefixed string, eight bytes per round.
func (h *Hasher) String(s string) {
	h.Uint64(uint64(len(s)))
	i := 0
	for ; i+8 <= len(s); i += 8 {
		var w uint64
		for j := 0; j < 8; j++ {
			w |= uint64(s[i+j]) << (8 * j)
		}
		h.Uint64(w)
	}
	var w uint64
	for j := 0; i+j < len(s); j++ {
		w |= uint64(s[i+j]) << (8 * j)
	}
	if i < len(s) {
		h.Uint64(w)
	}
}

// Function fingerprints one function's IR.
//
// The implementation sits on every incremental compile's hot path, so it
// avoids maps and sorting: value and block renumbering use dense slices
// indexed by ID, and order-insensitive collections (pred lists, phi
// operands) are folded with a commutative multiset combiner instead of
// being sorted.
func Function(f *ir.Func) uint64 {
	h := New()
	hashFunction(h, f)
	return h.Sum()
}

// mix64 is a splitmix64 finalizer, used to build order-insensitive
// multiset hashes: elements are mixed individually and summed.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func hashFunction(h *Hasher, f *ir.Func) {
	h.String(f.Name)
	h.Int(int64(len(f.Params)))
	for _, p := range f.Params {
		h.Byte(byte(p.Type))
	}
	h.Byte(byte(f.Result))

	// Dense renumbering: params, then phis and instructions in layout
	// order. Constants are encoded inline rather than numbered.
	num := make([]int32, f.NumValues())
	for i, p := range f.Params {
		num[p.ID] = int32(i)
	}
	next := int32(len(f.Params))
	blockIndex := make([]int32, f.NumBlockIDs())
	for i, b := range f.Blocks {
		blockIndex[b.ID] = int32(i)
		for _, v := range b.Phis {
			num[v.ID] = next
			next++
		}
		for _, v := range b.Instrs {
			num[v.ID] = next
			next++
		}
	}

	// ref folds one operand in a single round for value references;
	// constants take two rounds (marker+type, then the payload).
	ref := func(v *ir.Value) {
		if v.Op == ir.OpConst {
			h.Uint64(0xC0DE<<32 | uint64(v.Type))
			h.Int(v.Aux)
			return
		}
		h.Uint64(uint64(num[v.ID])<<2 | 1)
	}

	hashValue := func(v *ir.Value) {
		// One word packs opcode, type, and operand counts.
		h.Uint64(uint64(v.Op) | uint64(v.Type)<<8 | uint64(len(v.Args))<<16 | uint64(len(v.Blocks))<<32)
		h.Int(v.Aux)
		if v.Sym != "" || v.Op == ir.OpCall || v.Op == ir.OpGlobalAddr {
			h.String(v.Sym)
		}
		if v.StrAux != "" || v.Op == ir.OpPrint || v.Op == ir.OpAssert {
			h.String(v.StrAux)
		}
		for _, a := range v.Args {
			ref(a)
		}
		for _, b := range v.Blocks {
			h.Int(int64(blockIndex[b.ID]))
		}
	}

	h.Int(int64(len(f.Blocks)))
	for _, b := range f.Blocks {
		h.Int(int64(len(b.Preds)))
		// Preds as an index multiset: pred-list order is a maintenance
		// detail, not semantics.
		var predSet uint64
		for _, p := range b.Preds {
			predSet += mix64(uint64(blockIndex[p.ID]) + 0x9e3779b97f4a7c15)
		}
		h.Uint64(predSet)
		h.Int(int64(len(b.Phis)))
		for _, v := range b.Phis {
			hashPhi(h, v, num, blockIndex)
		}
		h.Int(int64(len(b.Instrs)))
		for _, v := range b.Instrs {
			hashValue(v)
		}
		if b.Term != nil {
			hashValue(b.Term)
		} else {
			h.Byte(0xFF)
		}
	}
}

// hashPhi hashes a phi's (block, value) pairs as a multiset so that
// operand order — which tracks pred-list maintenance order — does not
// affect the fingerprint. Each pair is mixed into one word and the words
// are summed (a commutative combiner).
func hashPhi(h *Hasher, v *ir.Value, num []int32, blockIndex []int32) {
	h.Byte(byte(v.Op))
	h.Byte(byte(v.Type))
	h.Int(int64(len(v.Args)))
	var set uint64
	for i, a := range v.Args {
		var valWord uint64
		if a.Op == ir.OpConst {
			valWord = 0xC000_0000_0000_0000 ^ uint64(a.Aux)<<8 ^ uint64(a.Type)
		} else {
			valWord = uint64(num[a.ID])<<8 | 0x01
		}
		pair := mix64(valWord) + mix64(uint64(blockIndex[v.Blocks[i].ID])^0xabcdef12345)
		set += mix64(pair)
	}
	h.Uint64(set)
}

// Module fingerprints a whole module: globals, externs, and all functions
// in name order (declaration order is irrelevant to module passes).
func Module(m *ir.Module) uint64 {
	return ModuleWith(m, Function)
}

// ModuleWith is Module with a pluggable per-function hash, letting callers
// that cache function fingerprints (the stateful pass manager) avoid
// rehashing every function on every module-pass boundary.
func ModuleWith(m *ir.Module, funcHash func(*ir.Func) uint64) uint64 {
	h := New()
	h.String(m.Unit)
	h.Int(int64(len(m.Globals)))
	for _, g := range m.Globals {
		h.String(g.Name)
		h.Int(g.Words)
		h.Int(g.Init)
		if g.Private {
			h.Byte(1)
		} else {
			h.Byte(0)
		}
	}
	ext := append([]string(nil), m.Externs...)
	sort.Strings(ext)
	for _, e := range ext {
		h.String(e)
	}
	fns := make([]*ir.Func, len(m.Funcs))
	copy(fns, m.Funcs)
	sort.Slice(fns, func(i, j int) bool { return fns[i].Name < fns[j].Name })
	for _, f := range fns {
		h.Uint64(funcHash(f))
	}
	return h.Sum()
}

// Strings fingerprints a string slice (used for pipeline configuration
// hashes).
func Strings(ss []string) uint64 {
	h := New()
	h.Int(int64(len(ss)))
	for _, s := range ss {
		h.String(s)
	}
	return h.Sum()
}
