// Package fingerprint computes stable structural hashes of IR.
//
// The hash is the identity the stateful compiler's dormancy records are
// keyed by, so it must satisfy two properties:
//
//   - Stability: rebuilding identical source in a fresh process yields the
//     same hash — nothing position-, pointer-, or map-order-dependent may
//     leak in. Value references are therefore renumbered densely in
//     traversal order, and blocks are referenced by layout index.
//
//   - Sensitivity: any change a pass could observe must change the hash —
//     opcodes, types, operands, constants, callee names, block structure,
//     phi wiring.
//
// The hash is hierarchical: each basic block is hashed independently into
// a 64-bit sub-hash, and the function hash folds the sub-hashes in layout
// order. The hierarchy exists for memoization (see Memo): when a pass
// rewrites one block of a ten-block function, the next fingerprint recomputes
// one block hash and reuses nine.
//
// The underlying hash is FNV-seeded splitmix64 word mixing, chosen because
// dormancy records are advisory identities within a trusted cache, not
// security boundaries, and hashing sits on the hot path of every
// incremental compile.
package fingerprint

import (
	"sort"
	"sync"

	"statefulcc/internal/ir"
)

const seedOffset = 14695981039346656037

// Hasher accumulates a word-oriented mixing hash over typed fields. Each
// 64-bit word costs one xor plus a splitmix64 finalizer round — roughly
// 30× cheaper than byte-wise FNV on the instruction encodings this package
// hashes, which matters because fingerprinting sits on the incremental
// compile hot path.
type Hasher struct {
	h uint64
}

// New returns a fresh hasher. Hot paths that create hashers per item should
// use Get/Put instead, which recycle hashers through a sync.Pool.
func New() *Hasher { return &Hasher{h: seedOffset} }

// Reset returns the hasher to its initial state, equivalent to New.
func (h *Hasher) Reset() { h.h = seedOffset }

var hasherPool = sync.Pool{New: func() any { return New() }}

// Get returns a reset hasher from the package pool. Pair with Put.
func Get() *Hasher {
	h := hasherPool.Get().(*Hasher)
	h.Reset()
	return h
}

// Put recycles a hasher obtained from Get. The hasher must not be used
// after Put.
func Put(h *Hasher) { hasherPool.Put(h) }

// Sum returns the current hash value.
func (h *Hasher) Sum() uint64 { return mix64(h.h) }

// Byte folds one byte into the hash.
func (h *Hasher) Byte(b byte) {
	h.Uint64(uint64(b) | 0x100)
}

// Uint64 folds a 64-bit value.
func (h *Hasher) Uint64(v uint64) {
	h.h = mix64(h.h ^ mix64(v+0x9e3779b97f4a7c15))
}

// Int folds a signed integer.
func (h *Hasher) Int(v int64) { h.Uint64(uint64(v)) }

// String folds a length-prefixed string, eight bytes per round. The length
// prefix makes the tail word unambiguous — a short tail word can never
// collide with a full word of another string — so the tail needs no
// separate length re-derivation, just the remaining bytes packed once.
func (h *Hasher) String(s string) {
	h.Uint64(uint64(len(s)))
	for len(s) >= 8 {
		h.Uint64(uint64(s[0]) | uint64(s[1])<<8 | uint64(s[2])<<16 | uint64(s[3])<<24 |
			uint64(s[4])<<32 | uint64(s[5])<<40 | uint64(s[6])<<48 | uint64(s[7])<<56)
		s = s[8:]
	}
	if len(s) > 0 {
		var w uint64
		for j := 0; j < len(s); j++ {
			w |= uint64(s[j]) << (8 * j)
		}
		h.Uint64(w)
	}
}

// mix64 is a splitmix64 finalizer, used to build order-insensitive
// multiset hashes: elements are mixed individually and summed.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// funcMemo holds one function's memoized block hashes, indexed by block
// position. The whole record is valid only while the function's layout
// generation matches: every mutation of the block list (add, remove,
// reorder) advances it, so while it matches, position i still names the
// same block, and entry i is valid iff gens[i] matches that block's
// content generation. Keying by position rather than block pointer means
// a function fingerprint costs one map lookup, not one per block — the
// map was the dominant cold-path overhead of the hierarchy.
type funcMemo struct {
	layout uint32
	gens   []uint32
	hashes []uint64
}

// Memo memoizes per-block hashes across FunctionWith calls. It is owned by
// a single pipeline driver (not safe for concurrent use) and must be Reset
// at every compilation boundary: records are keyed by function pointer and
// validated by generation counters, and a fresh compilation rebuilds IR
// with fresh counters, so stale cross-compilation records could otherwise
// alias recycled pointers.
type Memo struct {
	funcs map[*ir.Func]*funcMemo
	// free recycles invalidated records (and their slice capacity) so the
	// cold path after a Reset — the start of every compilation — does not
	// reallocate one record per function. Recycled records are marked
	// stale by truncating gens to length zero, which can never pass the
	// record-shape check against a function with blocks.
	free []*funcMemo

	// BlocksMemoized and BlocksRehashed count block-hash reuse vs
	// recomputation, cumulatively over the memo's lifetime. They feed the
	// fingerprint.blocks_memoized / fingerprint.blocks_rehashed counters.
	BlocksMemoized int64
	BlocksRehashed int64
}

// NewMemo returns an empty memo.
func NewMemo() *Memo {
	return &Memo{funcs: make(map[*ir.Func]*funcMemo)}
}

// Reset drops all memoized hashes (keeping the map's capacity, the record
// free list, and the cumulative counters). Must be called at every
// compilation boundary.
func (m *Memo) Reset() {
	if m == nil {
		return
	}
	for _, fm := range m.funcs {
		fm.gens = fm.gens[:0]
		m.free = append(m.free, fm)
	}
	clear(m.funcs)
}

// Invalidate drops the memoized hashes of f's blocks. The driver's
// soundness sentinel uses it before an audit rehash so that a pass that
// mutated IR without advancing generation counters (the lying-pass failure
// mode the sentinel exists to catch) cannot hide behind the memo.
func (m *Memo) Invalidate(f *ir.Func) {
	if m == nil {
		return
	}
	if fm, ok := m.funcs[f]; ok {
		fm.gens = fm.gens[:0]
		m.free = append(m.free, fm)
		delete(m.funcs, f)
	}
}

// record returns f's memo record, creating (or recycling) one on first
// sight.
func (m *Memo) record(f *ir.Func) *funcMemo {
	if fm := m.funcs[f]; fm != nil {
		return fm
	}
	var fm *funcMemo
	if n := len(m.free); n > 0 {
		fm = m.free[n-1]
		m.free = m.free[:n-1]
	} else {
		fm = new(funcMemo)
	}
	m.funcs[f] = fm
	return fm
}

// scratch holds the reusable working state of one function hash: the dense
// value-renumbering table and the block-index table. Pooled so
// steady-state fingerprinting allocates nothing.
type scratch struct {
	num      []int32
	blockIdx []int32
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// number fills the dense renumbering: params, then phis and instructions
// in layout order. Constants are encoded inline rather than numbered. The
// tables are zeroed first so that hashes stay deterministic even across
// scratch reuse.
func (sc *scratch) number(f *ir.Func) {
	sc.num = grow(sc.num, f.NumValues())
	clear(sc.num)
	sc.blockIdx = grow(sc.blockIdx, f.NumBlockIDs())
	clear(sc.blockIdx)
	for i, p := range f.Params {
		sc.num[p.ID] = int32(i)
	}
	next := int32(len(f.Params))
	for i, b := range f.Blocks {
		sc.blockIdx[b.ID] = int32(i)
		for _, v := range b.Phis {
			sc.num[v.ID] = next
			next++
		}
		for _, v := range b.Instrs {
			sc.num[v.ID] = next
			next++
		}
	}
}

// ref folds one operand in a single round for value references; constants
// take two rounds (marker+type, then the payload).
func (sc *scratch) ref(h *Hasher, v *ir.Value) {
	if v.Op == ir.OpConst {
		h.Uint64(0xC0DE<<32 | uint64(v.Type))
		h.Int(v.Aux)
		return
	}
	h.Uint64(uint64(sc.num[v.ID])<<2 | 1)
}

func (sc *scratch) hashValue(h *Hasher, v *ir.Value) {
	// One word packs opcode, type, and operand counts.
	h.Uint64(uint64(v.Op) | uint64(v.Type)<<8 | uint64(len(v.Args))<<16 | uint64(len(v.Blocks))<<32)
	h.Int(v.Aux)
	if v.Sym != "" || v.Op == ir.OpCall || v.Op == ir.OpGlobalAddr {
		h.String(v.Sym)
	}
	if v.StrAux != "" || v.Op == ir.OpPrint || v.Op == ir.OpAssert {
		h.String(v.StrAux)
	}
	for _, a := range v.Args {
		sc.ref(h, a)
	}
	for _, b := range v.Blocks {
		h.Int(int64(sc.blockIdx[b.ID]))
	}
}

// hashPhi hashes a phi's (block, value) pairs as a multiset so that
// operand order — which tracks pred-list maintenance order — does not
// affect the fingerprint. Each pair is mixed into one word and the words
// are summed (a commutative combiner).
func (sc *scratch) hashPhi(h *Hasher, v *ir.Value) {
	h.Byte(byte(v.Op))
	h.Byte(byte(v.Type))
	h.Int(int64(len(v.Args)))
	var set uint64
	for i, a := range v.Args {
		var valWord uint64
		if a.Op == ir.OpConst {
			valWord = 0xC000_0000_0000_0000 ^ uint64(a.Aux)<<8 ^ uint64(a.Type)
		} else {
			valWord = uint64(sc.num[a.ID])<<8 | 0x01
		}
		pair := mix64(valWord) + mix64(uint64(sc.blockIdx[v.Blocks[i].ID])^0xabcdef12345)
		set += mix64(pair)
	}
	h.Uint64(set)
}

// hashBlock computes one block's self-contained sub-hash. The encoding
// references other blocks only through the dense numbering and layout
// indices, which is exactly what the layout generation in the memo's
// validity rule covers.
func (sc *scratch) hashBlock(b *ir.Block) uint64 {
	var h Hasher
	h.Reset()
	h.Int(int64(len(b.Preds)))
	// Preds as an index multiset: pred-list order is a maintenance
	// detail, not semantics.
	var predSet uint64
	for _, p := range b.Preds {
		predSet += mix64(uint64(sc.blockIdx[p.ID]) + 0x9e3779b97f4a7c15)
	}
	h.Uint64(predSet)
	h.Int(int64(len(b.Phis)))
	for _, v := range b.Phis {
		sc.hashPhi(&h, v)
	}
	h.Int(int64(len(b.Instrs)))
	for _, v := range b.Instrs {
		sc.hashValue(&h, v)
	}
	if b.Term != nil {
		sc.hashValue(&h, b.Term)
	} else {
		h.Byte(0xFF)
	}
	return h.Sum()
}

// Function fingerprints one function's IR without memoization. It is the
// reference implementation of the hierarchical hash: FunctionWith with any
// memo must produce the identical value (the self-check tests enforce it).
func Function(f *ir.Func) uint64 {
	return FunctionWith(f, nil)
}

// FunctionWith fingerprints one function's IR, reusing memoized block
// hashes where the memo's generation checks prove them still valid. A nil
// memo recomputes everything.
//
// The implementation sits on every incremental compile's hot path, so it
// avoids maps, sorting, and steady-state allocation: value and block
// renumbering use pooled dense slices indexed by ID, order-insensitive
// collections (pred lists, phi operands) are folded with a commutative
// multiset combiner instead of being sorted, and the renumbering pass is
// skipped entirely when every block hash is memoized.
func FunctionWith(f *ir.Func, memo *Memo) uint64 {
	sc := scratchPool.Get().(*scratch)

	var h Hasher
	h.Reset()
	h.String(f.Name)
	h.Int(int64(len(f.Params)))
	for _, p := range f.Params {
		h.Byte(byte(p.Type))
	}
	h.Byte(byte(f.Result))
	h.Int(int64(len(f.Blocks)))

	if memo == nil {
		sc.number(f)
		for _, b := range f.Blocks {
			h.Uint64(sc.hashBlock(b))
		}
		sum := h.Sum()
		scratchPool.Put(sc)
		return sum
	}

	layout := f.LayoutGen()
	fm := memo.record(f)
	if fm.layout != layout || len(fm.gens) != len(f.Blocks) {
		// First sight or layout changed: every sub-hash is stale (the
		// numbering and block indices they reference may have shifted).
		fm.layout = layout
		fm.gens = grow(fm.gens, len(f.Blocks))
		fm.hashes = grow(fm.hashes, len(f.Blocks))
		sc.number(f)
		for i, b := range f.Blocks {
			bh := sc.hashBlock(b)
			fm.gens[i] = b.Gen()
			fm.hashes[i] = bh
			h.Uint64(bh)
		}
		memo.BlocksRehashed += int64(len(f.Blocks))
		sum := h.Sum()
		scratchPool.Put(sc)
		return sum
	}

	// Layout unchanged, so position i still names the block it did when
	// the record was filled; only content-touched blocks rehash. The
	// renumbering pass is skipped entirely when every block is memoized.
	numbered := false
	for i, b := range f.Blocks {
		if fm.gens[i] == b.Gen() {
			memo.BlocksMemoized++
			h.Uint64(fm.hashes[i])
			continue
		}
		if !numbered {
			sc.number(f)
			numbered = true
		}
		bh := sc.hashBlock(b)
		fm.gens[i] = b.Gen()
		fm.hashes[i] = bh
		memo.BlocksRehashed++
		h.Uint64(bh)
	}

	sum := h.Sum()
	scratchPool.Put(sc)
	return sum
}

// LegacyFunction is the pre-hierarchical (flat, allocating) fingerprint
// implementation, retained verbatim so benchmarks can report the old-vs-new
// cost side by side. Its hash values are not comparable with Function's —
// only its cost is interesting.
func LegacyFunction(f *ir.Func) uint64 {
	h := New()
	h.String(f.Name)
	h.Int(int64(len(f.Params)))
	for _, p := range f.Params {
		h.Byte(byte(p.Type))
	}
	h.Byte(byte(f.Result))

	num := make([]int32, f.NumValues())
	for i, p := range f.Params {
		num[p.ID] = int32(i)
	}
	next := int32(len(f.Params))
	blockIndex := make([]int32, f.NumBlockIDs())
	for i, b := range f.Blocks {
		blockIndex[b.ID] = int32(i)
		for _, v := range b.Phis {
			num[v.ID] = next
			next++
		}
		for _, v := range b.Instrs {
			num[v.ID] = next
			next++
		}
	}

	ref := func(v *ir.Value) {
		if v.Op == ir.OpConst {
			h.Uint64(0xC0DE<<32 | uint64(v.Type))
			h.Int(v.Aux)
			return
		}
		h.Uint64(uint64(num[v.ID])<<2 | 1)
	}
	hashValue := func(v *ir.Value) {
		h.Uint64(uint64(v.Op) | uint64(v.Type)<<8 | uint64(len(v.Args))<<16 | uint64(len(v.Blocks))<<32)
		h.Int(v.Aux)
		if v.Sym != "" || v.Op == ir.OpCall || v.Op == ir.OpGlobalAddr {
			h.String(v.Sym)
		}
		if v.StrAux != "" || v.Op == ir.OpPrint || v.Op == ir.OpAssert {
			h.String(v.StrAux)
		}
		for _, a := range v.Args {
			ref(a)
		}
		for _, b := range v.Blocks {
			h.Int(int64(blockIndex[b.ID]))
		}
	}

	h.Int(int64(len(f.Blocks)))
	for _, b := range f.Blocks {
		h.Int(int64(len(b.Preds)))
		var predSet uint64
		for _, p := range b.Preds {
			predSet += mix64(uint64(blockIndex[p.ID]) + 0x9e3779b97f4a7c15)
		}
		h.Uint64(predSet)
		h.Int(int64(len(b.Phis)))
		for _, v := range b.Phis {
			h.Byte(byte(v.Op))
			h.Byte(byte(v.Type))
			h.Int(int64(len(v.Args)))
			var set uint64
			for i, a := range v.Args {
				var valWord uint64
				if a.Op == ir.OpConst {
					valWord = 0xC000_0000_0000_0000 ^ uint64(a.Aux)<<8 ^ uint64(a.Type)
				} else {
					valWord = uint64(num[a.ID])<<8 | 0x01
				}
				pair := mix64(valWord) + mix64(uint64(blockIndex[v.Blocks[i].ID])^0xabcdef12345)
				set += mix64(pair)
			}
			h.Uint64(set)
		}
		h.Int(int64(len(b.Instrs)))
		for _, v := range b.Instrs {
			hashValue(v)
		}
		if b.Term != nil {
			hashValue(b.Term)
		} else {
			h.Byte(0xFF)
		}
	}
	return h.Sum()
}

// Module fingerprints a whole module: globals, externs, and all functions
// in name order (declaration order is irrelevant to module passes).
func Module(m *ir.Module) uint64 {
	return ModuleWith(m, Function)
}

// ModuleWith is Module with a pluggable per-function hash, letting callers
// that cache function fingerprints (the stateful pass manager) avoid
// rehashing every function on every module-pass boundary.
func ModuleWith(m *ir.Module, funcHash func(*ir.Func) uint64) uint64 {
	h := Get()
	defer Put(h)
	h.String(m.Unit)
	h.Int(int64(len(m.Globals)))
	for _, g := range m.Globals {
		h.String(g.Name)
		h.Int(g.Words)
		h.Int(g.Init)
		if g.Private {
			h.Byte(1)
		} else {
			h.Byte(0)
		}
	}
	ext := append([]string(nil), m.Externs...)
	sort.Strings(ext)
	for _, e := range ext {
		h.String(e)
	}
	fns := make([]*ir.Func, len(m.Funcs))
	copy(fns, m.Funcs)
	sort.Slice(fns, func(i, j int) bool { return fns[i].Name < fns[j].Name })
	for _, f := range fns {
		h.Uint64(funcHash(f))
	}
	return h.Sum()
}

// Strings fingerprints a string slice (used for pipeline configuration
// hashes).
func Strings(ss []string) uint64 {
	h := Get()
	defer Put(h)
	h.Int(int64(len(ss)))
	for _, s := range ss {
		h.String(s)
	}
	return h.Sum()
}
