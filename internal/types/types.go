// Package types implements MiniC's type system and semantic checker.
//
// The type language is tiny — int, bool, fixed-size int arrays, and void
// function results — but the checker does everything a real frontend does:
// scoped symbol resolution, lvalue/rvalue discipline, call-signature
// checking, constant-expression evaluation for globals and const
// declarations, and a conservative all-paths-return analysis. The result is
// an Info side table that the IR builder consumes, leaving the AST untouched.
package types

import (
	"fmt"

	"statefulcc/internal/ast"
)

// Kind classifies a Type.
type Kind int

// Type kinds.
const (
	Invalid Kind = iota
	Int
	Bool
	Array
	Void
)

// Type describes a MiniC type. Types are compared with Equal rather than
// pointer identity; scalar types are interned in the package-level
// singletons.
type Type struct {
	Kind Kind
	Len  int64 // array length when Kind == Array
}

// Interned scalar types.
var (
	IntType     = &Type{Kind: Int}
	BoolType    = &Type{Kind: Bool}
	VoidType    = &Type{Kind: Void}
	InvalidType = &Type{Kind: Invalid}
)

// ArrayOf returns the type [n]int.
func ArrayOf(n int64) *Type { return &Type{Kind: Array, Len: n} }

// String renders the type in source syntax.
func (t *Type) String() string {
	switch t.Kind {
	case Int:
		return "int"
	case Bool:
		return "bool"
	case Array:
		return fmt.Sprintf("[%d]int", t.Len)
	case Void:
		return "void"
	default:
		return "invalid"
	}
}

// Equal reports structural type equality.
func (t *Type) Equal(u *Type) bool {
	return t.Kind == u.Kind && (t.Kind != Array || t.Len == u.Len)
}

// IsScalar reports whether t is int or bool (a value that fits a register).
func (t *Type) IsScalar() bool { return t.Kind == Int || t.Kind == Bool }

// Signature is a function type.
type Signature struct {
	Params []*Type
	Result *Type // VoidType for no result
}

// String renders "func(int, bool) int".
func (s *Signature) String() string {
	out := "func("
	for i, p := range s.Params {
		if i > 0 {
			out += ", "
		}
		out += p.String()
	}
	out += ")"
	if s.Result.Kind != Void {
		out += " " + s.Result.String()
	}
	return out
}

// Equal reports signature equality.
func (s *Signature) Equal(o *Signature) bool {
	if len(s.Params) != len(o.Params) || !s.Result.Equal(o.Result) {
		return false
	}
	for i := range s.Params {
		if !s.Params[i].Equal(o.Params[i]) {
			return false
		}
	}
	return true
}

// SymbolKind classifies a resolved name.
type SymbolKind int

// Symbol kinds.
const (
	SymLocal SymbolKind = iota
	SymParam
	SymGlobal
	SymFunc
	SymExtern
	SymConst
	SymBuiltin
)

// String returns the symbol kind name.
func (k SymbolKind) String() string {
	switch k {
	case SymLocal:
		return "local"
	case SymParam:
		return "param"
	case SymGlobal:
		return "global"
	case SymFunc:
		return "func"
	case SymExtern:
		return "extern"
	case SymConst:
		return "const"
	case SymBuiltin:
		return "builtin"
	default:
		return "symbol"
	}
}

// Symbol is a resolved declaration.
type Symbol struct {
	Kind  SymbolKind
	Name  string
	Type  *Type      // value type (nil for functions)
	Sig   *Signature // for SymFunc/SymExtern/SymBuiltin
	Const int64      // value for SymConst
	Decl  ast.Node   // declaring node (nil for builtins)
}

// Builtin function names recognized by the checker and lowered specially.
const (
	BuiltinPrint  = "print"
	BuiltinAssert = "assert"
)

// Info is the checker's output: side tables keyed by AST node.
type Info struct {
	// ExprTypes maps each expression to its type.
	ExprTypes map[ast.Expr]*Type
	// Uses maps each identifier use to its symbol.
	Uses map[*ast.IdentExpr]*Symbol
	// Defs maps each declaring node to its symbol.
	Defs map[ast.Node]*Symbol
	// Funcs lists the checked function declarations in source order.
	Funcs []*ast.FuncDecl
	// Globals lists global variable symbols in source order.
	Globals []*Symbol
	// GlobalInits maps a global symbol to its constant initializer value.
	GlobalInits map[*Symbol]int64
	// ConstVals maps constant expressions that the checker folded
	// (const-decl references and literal arithmetic) to their values.
	ConstVals map[ast.Expr]int64
}

func newInfo() *Info {
	return &Info{
		ExprTypes:   make(map[ast.Expr]*Type),
		Uses:        make(map[*ast.IdentExpr]*Symbol),
		Defs:        make(map[ast.Node]*Symbol),
		GlobalInits: make(map[*Symbol]int64),
		ConstVals:   make(map[ast.Expr]int64),
	}
}

// TypeOf returns the checked type of e, or InvalidType.
func (info *Info) TypeOf(e ast.Expr) *Type {
	if t, ok := info.ExprTypes[e]; ok {
		return t
	}
	return InvalidType
}

// SymbolOf returns the symbol an identifier resolves to, or nil.
func (info *Info) SymbolOf(e *ast.IdentExpr) *Symbol { return info.Uses[e] }
