package types

// Additional checker tests: the while-true return analysis, const-decl
// corner cases, and error recovery in partially broken programs.

import (
	"testing"

	"statefulcc/internal/source"
)

func TestWhileTrueReturns(t *testing.T) {
	// Accepted: infinite loop with internal return.
	mustCheck(t, `
func f(x int) int {
    while true {
        if x > 3 { return x; }
        x++;
    }
}`)
	// Accepted: plain infinite loop in an int function (never falls off).
	mustCheck(t, `
func f() int {
    while true { }
}`)
	// Rejected: break makes fall-through possible.
	wantError(t, `
func f(x int) int {
    while true {
        if x > 3 { break; }
        x++;
    }
}`, "missing return")
	// Accepted: the break is inside a NESTED loop and cannot exit the
	// outer while-true.
	mustCheck(t, `
func f(x int) int {
    while true {
        for var i int = 0; i < 3; i++ {
            if i == x { break; }
        }
        if x > 0 { return x; }
    }
}`)
	// Rejected: while with non-literal condition is conservative.
	wantError(t, `
func f(b bool) int {
    while b { return 1; }
}`, "missing return")
}

func TestConstCornerCases(t *testing.T) {
	// Consts may reference earlier consts, including unary forms.
	info := mustCheck(t, `
const A = 10;
const B = -A;
const C = ^A;
const D = A << 2;
func main() { print(B, C, D); }`)
	want := map[string]int64{"B": -10, "C": -11, "D": 40}
	for _, sym := range info.Defs {
		if v, ok := want[sym.Name]; ok && sym.Const != v {
			t.Errorf("%s = %d, want %d", sym.Name, sym.Const, v)
		}
	}
	// Forward const references fail (single-pass top-level collection).
	wantError(t, `const X = Y; const Y = 1; func main() { }`, "constant")
	// Shift out of range refuses to fold at compile time.
	wantError(t, `const S = 1 << 64; func main() { }`, "constant")
}

func TestCheckerRecoversPerFunction(t *testing.T) {
	// An error in one function must not suppress checking of the next.
	_, errs := check(t, `
func bad() int { return doesnotexist; }
func alsobad() { var x bool = 3; }
func main() { }`)
	if errs.Len() < 2 {
		t.Errorf("expected independent errors per function, got %d: %v", errs.Len(), errs)
	}
}

func TestGlobalArrayRules(t *testing.T) {
	wantError(t, `var a [0]int; func main() { }`, "positive")
	wantError(t, `var a [4]int = 3; func main() { }`, "initializer")
	mustCheck(t, `var a [4]int; func main() { a[0] = 1; }`)
}

func TestVoidCallStatementOK(t *testing.T) {
	mustCheck(t, `
func log(x int) { print(x); }
func main() { log(3); }`)
	// A value-returning call used as a statement is allowed (result
	// discarded), matching C.
	mustCheck(t, `
func f() int { return 1; }
func main() { f(); }`)
}

func TestFunctionAsValueRejected(t *testing.T) {
	// Regression for a fuzzer-found frontend hole: using a function name
	// as a value (indexing, assigning, printing it) must be a checker
	// error, not an IR-builder panic.
	wantError(t, `func r() { r[0] = 0; }`, "function, not a value")
	wantError(t, `func f() int { return 0; } func g() { var x int = f; }`, "function, not a value")
	wantError(t, `func f() { } func g() { print(f); }`, "function, not a value")
	wantError(t, `extern func e() int; func g() int { return e + 1; }`, "function, not a value")
	// Calling remains fine.
	mustCheck(t, `func f() int { return 1; } func g() int { return f(); }`)
}

func TestUnreachableCodeWarning(t *testing.T) {
	wantWarn := func(src string) {
		t.Helper()
		info, errs := check(t, src)
		_ = info
		if errs.HasErrors() {
			t.Fatalf("unexpected errors: %v", errs)
		}
		found := false
		for _, d := range errs.Diags {
			if d.Severity == source.Warning && d.Message == "unreachable code" {
				found = true
			}
		}
		if !found {
			t.Errorf("no unreachable-code warning for %q (diags: %v)", src, errs)
		}
	}
	wantWarn(`func f() int { return 1; print(2); }`)
	wantWarn(`func f() { while true { break; print(1); } }`)
	wantWarn(`func f(x int) int { if x > 0 { return 1; } else { return 2; } x = 3; return x; }`)
	// No warning for normal code.
	info, errs := check(t, `func f(x int) int { if x > 0 { return 1; } return 2; }`)
	_ = info
	for _, d := range errs.Diags {
		if d.Severity == source.Warning {
			t.Errorf("spurious warning: %v", d)
		}
	}
}

func TestParamsAreAssignable(t *testing.T) {
	mustCheck(t, `func f(x int) int { x = x + 1; return x; }`)
	mustCheck(t, `func f(b bool) bool { b = !b; return b; }`)
}
