package types

// This file implements the semantic checker proper: scope management,
// statement and expression checking, constant folding, and the
// all-paths-return analysis.

import (
	"statefulcc/internal/ast"
	"statefulcc/internal/source"
	"statefulcc/internal/token"
)

// Check type-checks one compilation unit. Diagnostics go to errs; the
// returned Info is usable (for the checked parts) even on error.
func Check(file *source.File, tree *ast.File, errs *source.ErrorList) *Info {
	c := &checker{
		file: file,
		errs: errs,
		info: newInfo(),
		top:  newScope(nil),
	}
	c.declareBuiltins()
	c.collectTopLevel(tree)
	c.checkBodies(tree)
	return c.info
}

type scope struct {
	parent  *scope
	symbols map[string]*Symbol
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, symbols: make(map[string]*Symbol)}
}

func (s *scope) lookup(name string) *Symbol {
	for sc := s; sc != nil; sc = sc.parent {
		if sym, ok := sc.symbols[name]; ok {
			return sym
		}
	}
	return nil
}

func (s *scope) declare(sym *Symbol) *Symbol {
	if prev, ok := s.symbols[sym.Name]; ok {
		return prev
	}
	s.symbols[sym.Name] = sym
	return nil
}

type checker struct {
	file *source.File
	errs *source.ErrorList
	info *Info
	top  *scope

	// Per-function state.
	fn        *ast.FuncDecl
	fnSig     *Signature
	loopDepth int
}

func (c *checker) errorf(pos source.Pos, format string, args ...any) {
	c.errs.Errorf(c.file.Position(pos), format, args...)
}

func (c *checker) declareBuiltins() {
	c.top.declare(&Symbol{
		Kind: SymBuiltin, Name: BuiltinPrint,
		Sig: &Signature{Result: VoidType}, // variadic; arg checking is special-cased
	})
	c.top.declare(&Symbol{
		Kind: SymBuiltin, Name: BuiltinAssert,
		Sig: &Signature{Params: []*Type{BoolType}, Result: VoidType},
	})
}

// resolveType converts a syntactic type to a semantic one.
func (c *checker) resolveType(t ast.TypeExpr) *Type {
	switch t := t.(type) {
	case *ast.ScalarType:
		if t.Kind == token.BOOLTYPE {
			return BoolType
		}
		return IntType
	case *ast.ArrayType:
		if t.Len <= 0 {
			c.errorf(t.Pos(), "array length must be positive, got %d", t.Len)
			return ArrayOf(1)
		}
		return ArrayOf(t.Len)
	default:
		return InvalidType
	}
}

func (c *checker) signatureOf(params []*ast.Param, result ast.TypeExpr) *Signature {
	sig := &Signature{Result: VoidType}
	for _, p := range params {
		t := c.resolveType(p.Type)
		if t.Kind == Array {
			c.errorf(p.Pos(), "arrays cannot be passed as parameters")
			t = IntType
		}
		sig.Params = append(sig.Params, t)
	}
	if result != nil {
		t := c.resolveType(result)
		if t.Kind == Array {
			c.errorf(result.Pos(), "arrays cannot be returned")
			t = IntType
		}
		sig.Result = t
	}
	return sig
}

// collectTopLevel declares all top-level names before checking bodies, so
// that forward references between functions work.
func (c *checker) collectTopLevel(tree *ast.File) {
	for _, d := range tree.Decls {
		switch d := d.(type) {
		case *ast.FuncDecl:
			sym := &Symbol{Kind: SymFunc, Name: d.Name, Sig: c.signatureOf(d.Params, d.Result), Decl: d}
			c.declareTop(sym, d.Pos())
		case *ast.ExternDecl:
			sym := &Symbol{Kind: SymExtern, Name: d.Name, Sig: c.signatureOf(d.Params, d.Result), Decl: d}
			c.declareTop(sym, d.Pos())
		case *ast.VarDecl:
			t := c.resolveType(d.Type)
			sym := &Symbol{Kind: SymGlobal, Name: d.Name, Type: t, Decl: d}
			if c.declareTop(sym, d.Pos()) {
				c.info.Globals = append(c.info.Globals, sym)
				if d.Init != nil {
					if t.Kind == Array {
						c.errorf(d.Init.Pos(), "array globals cannot have initializers")
					} else if v, ok := c.constEval(d.Init); ok {
						c.info.GlobalInits[sym] = v
					} else {
						c.errorf(d.Init.Pos(), "global initializer must be a constant expression")
					}
				}
			}
		case *ast.ConstDecl:
			v, ok := c.constEval(d.Value)
			if !ok {
				c.errorf(d.Value.Pos(), "const initializer must be a constant expression")
			}
			sym := &Symbol{Kind: SymConst, Name: d.Name, Type: IntType, Const: v, Decl: d}
			c.declareTop(sym, d.Pos())
		}
	}
}

func (c *checker) declareTop(sym *Symbol, pos source.Pos) bool {
	if prev := c.top.declare(sym); prev != nil {
		// A matching extern followed by a definition (or vice versa) is
		// an error in one unit: externs refer to other units only.
		c.errorf(pos, "%s redeclared in this unit (previous declaration as %s)", sym.Name, prev.Kind)
		return false
	}
	c.info.Defs[sym.Decl] = sym
	return true
}

func (c *checker) checkBodies(tree *ast.File) {
	for _, d := range tree.Decls {
		fn, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		sym := c.info.Defs[fn]
		if sym == nil {
			continue // redeclaration; already reported
		}
		c.fn = fn
		c.fnSig = sym.Sig
		c.loopDepth = 0
		c.info.Funcs = append(c.info.Funcs, fn)

		fnScope := newScope(c.top)
		for i, p := range fn.Params {
			psym := &Symbol{Kind: SymParam, Name: p.Name, Type: sym.Sig.Params[i], Decl: p}
			if prev := fnScope.declare(psym); prev != nil {
				c.errorf(p.Pos(), "duplicate parameter %s", p.Name)
			}
			c.info.Defs[p] = psym
		}
		c.checkBlock(fn.Body, newScope(fnScope))

		if sym.Sig.Result.Kind != Void && !blockReturns(fn.Body) {
			c.errorf(fn.Pos(), "function %s: missing return on some paths", fn.Name)
		}
	}
	c.fn = nil
}

// --- statements --------------------------------------------------------------

func (c *checker) checkBlock(b *ast.BlockStmt, sc *scope) {
	warned := false
	for i, s := range b.Stmts {
		c.checkStmt(s, sc)
		if !warned && i+1 < len(b.Stmts) && stmtTerminates(s) {
			c.errs.Warnf(c.file.Position(b.Stmts[i+1].Pos()), "unreachable code")
			warned = true
		}
	}
}

// stmtTerminates reports whether control cannot continue past s — the
// unreachable-code warning's (conservative) predicate.
func stmtTerminates(s ast.Stmt) bool {
	switch s.(type) {
	case *ast.BreakStmt, *ast.ContinueStmt:
		return true
	}
	return stmtReturns(s)
}

func (c *checker) checkStmt(s ast.Stmt, sc *scope) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.checkBlock(s, newScope(sc))
	case *ast.DeclStmt:
		c.checkLocalDecl(s.Decl, sc)
	case *ast.AssignStmt:
		c.checkAssign(s, sc)
	case *ast.IfStmt:
		c.checkCond(s.Cond, sc)
		c.checkBlock(s.Then, newScope(sc))
		if s.Else != nil {
			c.checkStmt(s.Else, sc)
		}
	case *ast.WhileStmt:
		c.checkCond(s.Cond, sc)
		c.loopDepth++
		c.checkBlock(s.Body, newScope(sc))
		c.loopDepth--
	case *ast.ForStmt:
		inner := newScope(sc)
		if s.Init != nil {
			c.checkStmt(s.Init, inner)
		}
		if s.Cond != nil {
			c.checkCond(s.Cond, inner)
		}
		if s.Post != nil {
			c.checkStmt(s.Post, inner)
		}
		c.loopDepth++
		c.checkBlock(s.Body, newScope(inner))
		c.loopDepth--
	case *ast.ReturnStmt:
		c.checkReturn(s, sc)
	case *ast.BreakStmt:
		if c.loopDepth == 0 {
			c.errorf(s.Pos(), "break outside loop")
		}
	case *ast.ContinueStmt:
		if c.loopDepth == 0 {
			c.errorf(s.Pos(), "continue outside loop")
		}
	case *ast.ExprStmt:
		c.checkExpr(s.X, sc)
	}
}

func (c *checker) checkLocalDecl(d *ast.VarDecl, sc *scope) {
	t := c.resolveType(d.Type)
	sym := &Symbol{Kind: SymLocal, Name: d.Name, Type: t, Decl: d}
	if prev := sc.declare(sym); prev != nil {
		c.errorf(d.Pos(), "%s redeclared in this scope", d.Name)
	}
	c.info.Defs[d] = sym
	if d.Init != nil {
		it := c.checkExpr(d.Init, sc)
		if t.Kind == Array {
			c.errorf(d.Init.Pos(), "array variables cannot have initializers")
		} else if !it.Equal(t) && it.Kind != Invalid {
			c.errorf(d.Init.Pos(), "cannot initialize %s (%s) with %s", d.Name, t, it)
		}
	}
}

func (c *checker) checkAssign(s *ast.AssignStmt, sc *scope) {
	lt := c.checkExpr(s.Lhs, sc)
	rt := c.checkExpr(s.Rhs, sc)
	if id, ok := s.Lhs.(*ast.IdentExpr); ok {
		if sym := c.info.Uses[id]; sym != nil {
			switch sym.Kind {
			case SymConst:
				c.errorf(s.Pos(), "cannot assign to constant %s", sym.Name)
				return
			case SymFunc, SymExtern, SymBuiltin:
				c.errorf(s.Pos(), "cannot assign to function %s", sym.Name)
				return
			}
			if sym.Type != nil && sym.Type.Kind == Array {
				c.errorf(s.Pos(), "cannot assign to array %s as a whole", sym.Name)
				return
			}
		}
	}
	if op, ok := s.Op.CompoundAssignOp(); ok {
		_ = op
		if lt.Kind != Int && lt.Kind != Invalid {
			c.errorf(s.Pos(), "compound assignment requires int operands, got %s", lt)
		}
		if rt.Kind != Int && rt.Kind != Invalid {
			c.errorf(s.Rhs.Pos(), "compound assignment requires int operands, got %s", rt)
		}
		return
	}
	if !lt.Equal(rt) && lt.Kind != Invalid && rt.Kind != Invalid {
		c.errorf(s.Pos(), "cannot assign %s to %s", rt, lt)
	}
}

func (c *checker) checkReturn(s *ast.ReturnStmt, sc *scope) {
	want := c.fnSig.Result
	if s.Value == nil {
		if want.Kind != Void {
			c.errorf(s.Pos(), "missing return value (want %s)", want)
		}
		return
	}
	got := c.checkExpr(s.Value, sc)
	if want.Kind == Void {
		c.errorf(s.Pos(), "function %s returns no value", c.fn.Name)
		return
	}
	if !got.Equal(want) && got.Kind != Invalid {
		c.errorf(s.Value.Pos(), "cannot return %s (want %s)", got, want)
	}
}

func (c *checker) checkCond(e ast.Expr, sc *scope) {
	t := c.checkExpr(e, sc)
	if t.Kind != Bool && t.Kind != Invalid {
		c.errorf(e.Pos(), "condition must be bool, got %s", t)
	}
}

// --- expressions ---------------------------------------------------------------

func (c *checker) checkExpr(e ast.Expr, sc *scope) *Type {
	t := c.exprType(e, sc)
	c.info.ExprTypes[e] = t
	return t
}

func (c *checker) exprType(e ast.Expr, sc *scope) *Type {
	switch e := e.(type) {
	case *ast.IntLit:
		c.info.ConstVals[e] = e.Value
		return IntType
	case *ast.BoolLit:
		return BoolType
	case *ast.StringLit:
		c.errorf(e.Pos(), "string literals are only allowed as the first argument of print")
		return InvalidType
	case *ast.ParenExpr:
		return c.checkExpr(e.X, sc)
	case *ast.IdentExpr:
		return c.identType(e, sc)
	case *ast.UnaryExpr:
		return c.unaryType(e, sc)
	case *ast.BinaryExpr:
		return c.binaryType(e, sc)
	case *ast.IndexExpr:
		return c.indexType(e, sc)
	case *ast.CallExpr:
		return c.callType(e, sc)
	default:
		return InvalidType
	}
}

func (c *checker) identType(e *ast.IdentExpr, sc *scope) *Type {
	sym := sc.lookup(e.Name)
	if sym == nil {
		c.errorf(e.Pos(), "undefined: %s", e.Name)
		return InvalidType
	}
	c.info.Uses[e] = sym
	switch sym.Kind {
	case SymConst:
		c.info.ConstVals[e] = sym.Const
		return IntType
	case SymFunc, SymExtern, SymBuiltin:
		// Calls resolve their callee directly in callType, so reaching
		// here means the function name is used as a value — MiniC has no
		// function values.
		c.errorf(e.Pos(), "%s is a function, not a value", e.Name)
		return InvalidType
	default:
		return sym.Type
	}
}

func (c *checker) unaryType(e *ast.UnaryExpr, sc *scope) *Type {
	xt := c.checkExpr(e.X, sc)
	switch e.Op {
	case token.SUB, token.XOR:
		if xt.Kind != Int && xt.Kind != Invalid {
			c.errorf(e.Pos(), "operator %s requires int, got %s", e.Op, xt)
			return InvalidType
		}
		if v, ok := c.info.ConstVals[e.X]; ok {
			if e.Op == token.SUB {
				c.info.ConstVals[e] = -v
			} else {
				c.info.ConstVals[e] = ^v
			}
		}
		return IntType
	case token.NOT:
		if xt.Kind != Bool && xt.Kind != Invalid {
			c.errorf(e.Pos(), "operator ! requires bool, got %s", xt)
			return InvalidType
		}
		return BoolType
	}
	return InvalidType
}

func (c *checker) binaryType(e *ast.BinaryExpr, sc *scope) *Type {
	xt := c.checkExpr(e.X, sc)
	yt := c.checkExpr(e.Y, sc)
	bad := xt.Kind == Invalid || yt.Kind == Invalid

	fold := func(res *Type) *Type {
		if xv, ok := c.info.ConstVals[e.X]; ok {
			if yv, ok := c.info.ConstVals[e.Y]; ok {
				if v, ok := foldInt(e.Op, xv, yv); ok && res.Kind == Int {
					c.info.ConstVals[e] = v
				}
			}
		}
		return res
	}

	switch e.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.AND, token.OR, token.XOR, token.SHL, token.SHR:
		if !bad && (xt.Kind != Int || yt.Kind != Int) {
			c.errorf(e.Pos(), "operator %s requires int operands, got %s and %s", e.Op, xt, yt)
			return InvalidType
		}
		return fold(IntType)
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
		if !bad && (xt.Kind != Int || yt.Kind != Int) {
			c.errorf(e.Pos(), "operator %s requires int operands, got %s and %s", e.Op, xt, yt)
			return InvalidType
		}
		return BoolType
	case token.EQL, token.NEQ:
		if !bad && (!xt.Equal(yt) || !xt.IsScalar()) {
			c.errorf(e.Pos(), "operator %s requires matching scalar operands, got %s and %s", e.Op, xt, yt)
			return InvalidType
		}
		return BoolType
	case token.LAND, token.LOR:
		if !bad && (xt.Kind != Bool || yt.Kind != Bool) {
			c.errorf(e.Pos(), "operator %s requires bool operands, got %s and %s", e.Op, xt, yt)
			return InvalidType
		}
		return BoolType
	}
	return InvalidType
}

func (c *checker) indexType(e *ast.IndexExpr, sc *scope) *Type {
	xt := c.checkExpr(e.X, sc)
	it := c.checkExpr(e.Index, sc)
	if it.Kind != Int && it.Kind != Invalid {
		c.errorf(e.Index.Pos(), "array index must be int, got %s", it)
	}
	if xt.Kind != Array {
		if xt.Kind != Invalid {
			c.errorf(e.Pos(), "indexing requires an array, got %s", xt)
		}
		return InvalidType
	}
	if v, ok := c.info.ConstVals[e.Index]; ok && (v < 0 || v >= xt.Len) {
		c.errorf(e.Index.Pos(), "constant index %d out of bounds [0,%d)", v, xt.Len)
	}
	return IntType
}

func (c *checker) callType(e *ast.CallExpr, sc *scope) *Type {
	sym := sc.lookup(e.Callee.Name)
	if sym == nil {
		c.errorf(e.Callee.Pos(), "undefined function: %s", e.Callee.Name)
		for _, a := range e.Args {
			c.checkExpr(a, sc)
		}
		return InvalidType
	}
	c.info.Uses[e.Callee] = sym
	switch sym.Kind {
	case SymFunc, SymExtern:
		return c.checkCallArgs(e, sym.Sig, sc)
	case SymBuiltin:
		return c.checkBuiltinCall(e, sym, sc)
	default:
		c.errorf(e.Callee.Pos(), "%s is not a function", e.Callee.Name)
		for _, a := range e.Args {
			c.checkExpr(a, sc)
		}
		return InvalidType
	}
}

func (c *checker) checkCallArgs(e *ast.CallExpr, sig *Signature, sc *scope) *Type {
	if len(e.Args) != len(sig.Params) {
		c.errorf(e.Pos(), "%s expects %d arguments, got %d", e.Callee.Name, len(sig.Params), len(e.Args))
	}
	for i, a := range e.Args {
		at := c.checkExpr(a, sc)
		if i < len(sig.Params) && !at.Equal(sig.Params[i]) && at.Kind != Invalid {
			c.errorf(a.Pos(), "argument %d of %s: cannot use %s as %s", i+1, e.Callee.Name, at, sig.Params[i])
		}
	}
	return sig.Result
}

func (c *checker) checkBuiltinCall(e *ast.CallExpr, sym *Symbol, sc *scope) *Type {
	switch sym.Name {
	case BuiltinPrint:
		// print(("fmt-like label")? , scalars...)
		for i, a := range e.Args {
			if s, ok := a.(*ast.StringLit); ok {
				if i != 0 {
					c.errorf(a.Pos(), "string label must be the first print argument")
				}
				c.info.ExprTypes[a] = InvalidType
				_ = s
				continue
			}
			at := c.checkExpr(a, sc)
			if !at.IsScalar() && at.Kind != Invalid {
				c.errorf(a.Pos(), "print argument must be int or bool, got %s", at)
			}
		}
		return VoidType
	case BuiltinAssert:
		if len(e.Args) < 1 || len(e.Args) > 2 {
			c.errorf(e.Pos(), "assert expects 1 or 2 arguments (cond, optional message)")
		}
		if len(e.Args) >= 1 {
			c.checkCond(e.Args[0], sc)
		}
		if len(e.Args) == 2 {
			if _, ok := e.Args[1].(*ast.StringLit); !ok {
				c.errorf(e.Args[1].Pos(), "assert message must be a string literal")
			}
		}
		return VoidType
	}
	return VoidType
}

// --- constant folding ----------------------------------------------------------

// constEval evaluates an expression usable in constant contexts (int
// literals, const references once declared, unary -/^, binary int ops).
// It resolves names in the top-level scope only.
func (c *checker) constEval(e ast.Expr) (int64, bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Value, true
	case *ast.ParenExpr:
		return c.constEval(e.X)
	case *ast.IdentExpr:
		if sym := c.top.lookup(e.Name); sym != nil && sym.Kind == SymConst {
			c.info.Uses[e] = sym
			return sym.Const, true
		}
		return 0, false
	case *ast.UnaryExpr:
		v, ok := c.constEval(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case token.SUB:
			return -v, true
		case token.XOR:
			return ^v, true
		}
		return 0, false
	case *ast.BinaryExpr:
		x, ok := c.constEval(e.X)
		if !ok {
			return 0, false
		}
		y, ok := c.constEval(e.Y)
		if !ok {
			return 0, false
		}
		return foldInt(e.Op, x, y)
	default:
		return 0, false
	}
}

// foldInt applies an integer binary operator, refusing division by zero and
// out-of-range shifts so that folding never changes program behaviour.
func foldInt(op token.Kind, x, y int64) (int64, bool) {
	switch op {
	case token.ADD:
		return x + y, true
	case token.SUB:
		return x - y, true
	case token.MUL:
		return x * y, true
	case token.QUO:
		if y == 0 {
			return 0, false
		}
		return x / y, true
	case token.REM:
		if y == 0 {
			return 0, false
		}
		return x % y, true
	case token.AND:
		return x & y, true
	case token.OR:
		return x | y, true
	case token.XOR:
		return x ^ y, true
	case token.SHL:
		if y < 0 || y >= 64 {
			return 0, false
		}
		return x << uint(y), true
	case token.SHR:
		if y < 0 || y >= 64 {
			return 0, false
		}
		return x >> uint(y), true
	}
	return 0, false
}

// --- control-flow return analysis -------------------------------------------

// blockReturns reports whether every path through b ends in a return.
func blockReturns(b *ast.BlockStmt) bool {
	for _, s := range b.Stmts {
		if stmtReturns(s) {
			return true
		}
	}
	return false
}

func stmtReturns(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BlockStmt:
		return blockReturns(s)
	case *ast.IfStmt:
		if s.Else == nil {
			return false
		}
		return blockReturns(s.Then) && stmtReturns(s.Else)
	case *ast.WhileStmt:
		// "while true" without a break cannot fall through: control either
		// loops forever or leaves via a return inside the body.
		if lit, ok := s.Cond.(*ast.BoolLit); ok && lit.Value {
			hasBreak := false
			ast.Inspect(s.Body, func(n ast.Node) bool {
				switch n.(type) {
				case *ast.BreakStmt:
					hasBreak = true
					return false
				case *ast.WhileStmt, *ast.ForStmt:
					// Breaks inside nested loops do not exit this one.
					return false
				}
				return true
			})
			return !hasBreak
		}
		return false
	default:
		return false
	}
}
