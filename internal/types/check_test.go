package types

import (
	"strings"
	"testing"

	"statefulcc/internal/ast"
	"statefulcc/internal/parser"
	"statefulcc/internal/source"
)

func check(t *testing.T, src string) (*Info, *source.ErrorList) {
	t.Helper()
	var errs source.ErrorList
	file := source.NewFile("test.mc", []byte(src))
	tree := parser.ParseFile(file, &errs)
	if errs.HasErrors() {
		t.Fatalf("parse errors: %v", errs)
	}
	info := Check(file, tree, &errs)
	return info, &errs
}

func mustCheck(t *testing.T, src string) *Info {
	t.Helper()
	info, errs := check(t, src)
	if errs.HasErrors() {
		t.Fatalf("check errors: %v", errs)
	}
	return info
}

func wantError(t *testing.T, src, fragment string) {
	t.Helper()
	_, errs := check(t, src)
	if !errs.HasErrors() {
		t.Fatalf("expected error containing %q, got none", fragment)
	}
	if !strings.Contains(errs.Error(), fragment) {
		t.Fatalf("expected error containing %q, got: %v", fragment, errs)
	}
}

func TestValidProgram(t *testing.T) {
	mustCheck(t, `
const N = 4;
var g int = N * 2;
var arr [4]int;
extern func ext(x int) int;

func helper(a int, b bool) int {
    if b {
        return a;
    }
    return -a;
}

func main() {
    var i int = 0;
    while i < N {
        arr[i] = helper(ext(i), i % 2 == 0);
        i++;
    }
    print("done", arr[0], g);
    assert(arr[0] >= 0 || true);
}`)
}

func TestUndefined(t *testing.T) {
	wantError(t, `func f() { x = 1; }`, "undefined: x")
	wantError(t, `func f() { g(); }`, "undefined function: g")
}

func TestTypeMismatches(t *testing.T) {
	wantError(t, `func f() { var x int = true; }`, "cannot initialize")
	wantError(t, `func f() { var b bool; b = 3; }`, "cannot assign")
	wantError(t, `func f(x int) { if x { } }`, "condition must be bool")
	wantError(t, `func f() int { return true; }`, "cannot return")
	wantError(t, `func f(a bool, b bool) { var x int = a + b; }`, "requires int operands")
	wantError(t, `func f(a int) { var b bool = !a; }`, "requires bool")
	wantError(t, `func f(a int, b bool) { var c bool = a == b; }`, "matching scalar operands")
}

func TestCallChecking(t *testing.T) {
	base := `func g(a int, b bool) int { return a; } `
	wantError(t, base+`func f() { g(1); }`, "expects 2 arguments")
	wantError(t, base+`func f() { g(true, true); }`, "cannot use bool as int")
	wantError(t, base+`func f() { var x bool = g(1, true); }`, "cannot initialize")
	mustCheck(t, base+`func f() int { return g(1, true); }`)
}

func TestVoidMisuse(t *testing.T) {
	base := `func v() { } `
	wantError(t, base+`func f() { var x int = v(); }`, "cannot initialize")
	wantError(t, base+`func f() { return 3; }`, "returns no value")
}

func TestMissingReturn(t *testing.T) {
	wantError(t, `func f(x int) int { if x > 0 { return 1; } }`, "missing return")
	mustCheck(t, `func f(x int) int { if x > 0 { return 1; } else { return 2; } }`)
	mustCheck(t, `func f(x int) int { if x > 0 { return 1; } return 2; }`)
}

func TestBreakContinueOutsideLoop(t *testing.T) {
	wantError(t, `func f() { break; }`, "break outside loop")
	wantError(t, `func f() { continue; }`, "continue outside loop")
	mustCheck(t, `func f() { while true { break; continue; } }`)
}

func TestArrays(t *testing.T) {
	wantError(t, `func f() { var a [3]int; a = 1; }`, "cannot assign to array")
	wantError(t, `func f() { var a [3]int; var b bool = a[0] > 0; a[true] = 1; }`, "index must be int")
	wantError(t, `func f(x int) { x[0] = 1; }`, "indexing requires an array")
	wantError(t, `func f() { var a [3]int; a[5] = 1; }`, "out of bounds")
	wantError(t, `func f(a [3]int) { }`, "cannot be passed")
	mustCheck(t, `func f() int { var a [3]int; a[2] = 7; return a[2]; }`)
}

func TestConstEval(t *testing.T) {
	info := mustCheck(t, `
const A = 3;
const B = A * 4 + 1;
var g int = B - 1;
func main() { }`)
	var bsym *Symbol
	for _, sym := range info.Defs {
		if sym.Name == "B" {
			bsym = sym
		}
	}
	if bsym == nil || bsym.Const != 13 {
		t.Fatalf("B = %+v, want const 13", bsym)
	}
	for sym, v := range info.GlobalInits {
		if sym.Name == "g" && v != 12 {
			t.Errorf("g init = %d, want 12", v)
		}
	}
}

func TestConstRules(t *testing.T) {
	wantError(t, `func f() int { return 1; } var g int = f();`, "must be a constant")
	wantError(t, `const C = 1; func f() { C = 2; }`, "cannot assign to constant")
	wantError(t, `var g int = 1/0;`, "must be a constant") // fold refuses div-by-zero
}

func TestRedeclaration(t *testing.T) {
	wantError(t, `func f() { } func f() { }`, "redeclared")
	wantError(t, `var x int; func x() { }`, "redeclared")
	wantError(t, `func f(a int, a int) { }`, "duplicate parameter")
	wantError(t, `func f() { var x int; var x int; }`, "redeclared in this scope")
	// Shadowing in a nested scope is allowed.
	mustCheck(t, `func f() { var x int; { var x bool; x = true; } x = 1; }`)
}

func TestScoping(t *testing.T) {
	wantError(t, `func f() { { var x int; } x = 1; }`, "undefined: x")
	// For-header variables are scoped to the loop.
	wantError(t, `func f() { for var i int = 0; i < 3; i++ { } i = 1; }`, "undefined: i")
}

func TestPrintAssert(t *testing.T) {
	mustCheck(t, `func f() { print("label", 1, true); print(42); print(); }`)
	wantError(t, `func f() { print(1, "label"); }`, "first print argument")
	wantError(t, `func f() { assert(1); }`, "condition must be bool")
	wantError(t, `func f() { assert(true, false); }`, "must be a string literal")
	mustCheck(t, `func f() { assert(true, "msg"); }`)
}

func TestStringOutsidePrint(t *testing.T) {
	wantError(t, `func f() { var x int = "s"; }`, "only allowed as the first argument")
}

func TestExprTypesRecorded(t *testing.T) {
	info := mustCheck(t, `func f(a int) bool { return a * 2 > 3; }`)
	counts := map[Kind]int{}
	for _, tp := range info.ExprTypes {
		counts[tp.Kind]++
	}
	if counts[Int] == 0 || counts[Bool] == 0 {
		t.Errorf("expression types not recorded: %v", counts)
	}
}

func TestSignatureString(t *testing.T) {
	info := mustCheck(t, `func f(a int, b bool) int { return a; }`)
	for _, sym := range info.Defs {
		if sym.Name == "f" && sym.Sig != nil {
			if got := sym.Sig.String(); got != "func(int, bool) int" {
				t.Errorf("signature = %q", got)
			}
		}
	}
}

func TestTypeEquality(t *testing.T) {
	if !ArrayOf(3).Equal(ArrayOf(3)) {
		t.Error("equal array types not Equal")
	}
	if ArrayOf(3).Equal(ArrayOf(4)) {
		t.Error("different-length arrays Equal")
	}
	if IntType.Equal(BoolType) {
		t.Error("int equals bool")
	}
	if !IntType.IsScalar() || !BoolType.IsScalar() || ArrayOf(2).IsScalar() {
		t.Error("IsScalar misclassifies")
	}
}

func TestASTInspectCoverage(t *testing.T) {
	// Ensure every node kind is reachable by Inspect (guards against
	// traversal gaps that would hide nodes from tools).
	var errs source.ErrorList
	file := source.NewFile("t.mc", []byte(`
const C = 1;
var g int = 2;
var arr [2]int;
extern func e(x int) int;
func f(a int, b bool) int {
    var x int = -a;
    arr[0] = x;
    for var i int = 0; i < 2 && b; i++ { x += e(i); }
    while !b { b = true; break; }
    if b { x = 1; } else { x = (2); }
    print("x", x);
    assert(x != 0, "zero");
    return x;
}`))
	tree := parser.ParseFile(file, &errs)
	if errs.HasErrors() {
		t.Fatalf("parse: %v", errs)
	}
	seen := map[string]bool{}
	ast.Inspect(tree, func(n ast.Node) bool {
		seen[strings.TrimPrefix(typeOf(n), "*ast.")] = true
		return true
	})
	for _, want := range []string{
		"File", "FuncDecl", "ExternDecl", "VarDecl", "ConstDecl", "Param",
		"ScalarType", "ArrayType", "BlockStmt", "DeclStmt", "AssignStmt",
		"IfStmt", "WhileStmt", "ForStmt", "ReturnStmt", "BreakStmt",
		"ExprStmt", "IdentExpr", "IntLit", "BoolLit", "StringLit",
		"BinaryExpr", "UnaryExpr", "CallExpr", "IndexExpr", "ParenExpr",
	} {
		if !seen[want] {
			t.Errorf("Inspect never visited %s (saw %v)", want, seen)
		}
	}
}

func typeOf(n ast.Node) string {
	switch n.(type) {
	case *ast.File:
		return "*ast.File"
	case *ast.FuncDecl:
		return "*ast.FuncDecl"
	case *ast.ExternDecl:
		return "*ast.ExternDecl"
	case *ast.VarDecl:
		return "*ast.VarDecl"
	case *ast.ConstDecl:
		return "*ast.ConstDecl"
	case *ast.Param:
		return "*ast.Param"
	case *ast.ScalarType:
		return "*ast.ScalarType"
	case *ast.ArrayType:
		return "*ast.ArrayType"
	case *ast.BlockStmt:
		return "*ast.BlockStmt"
	case *ast.DeclStmt:
		return "*ast.DeclStmt"
	case *ast.AssignStmt:
		return "*ast.AssignStmt"
	case *ast.IfStmt:
		return "*ast.IfStmt"
	case *ast.WhileStmt:
		return "*ast.WhileStmt"
	case *ast.ForStmt:
		return "*ast.ForStmt"
	case *ast.ReturnStmt:
		return "*ast.ReturnStmt"
	case *ast.BreakStmt:
		return "*ast.BreakStmt"
	case *ast.ContinueStmt:
		return "*ast.ContinueStmt"
	case *ast.ExprStmt:
		return "*ast.ExprStmt"
	case *ast.IdentExpr:
		return "*ast.IdentExpr"
	case *ast.IntLit:
		return "*ast.IntLit"
	case *ast.BoolLit:
		return "*ast.BoolLit"
	case *ast.StringLit:
		return "*ast.StringLit"
	case *ast.BinaryExpr:
		return "*ast.BinaryExpr"
	case *ast.UnaryExpr:
		return "*ast.UnaryExpr"
	case *ast.CallExpr:
		return "*ast.CallExpr"
	case *ast.IndexExpr:
		return "*ast.IndexExpr"
	case *ast.ParenExpr:
		return "*ast.ParenExpr"
	default:
		return "unknown"
	}
}
