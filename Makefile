GO ?= go

.PHONY: ci vet build test race fuzz bench-baseline

# ci is the tier-1 gate: everything must stay green, including the race
# detector over the worker pool and the observability counters.
ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race exercises the parallel build engine (including the obs counters
# registry and tracer under concurrent workers) and the workload
# differential suite under the race detector.
race:
	$(GO) test -race ./internal/buildsys/... ./internal/obs/... ./internal/workload

# fuzz runs the fingerprint stability/sensitivity fuzzer for a short burst
# beyond its committed corpus.
fuzz:
	$(GO) test -fuzz FuzzFingerprintStability -fuzztime 30s ./internal/fingerprint

# bench-baseline regenerates the committed performance baseline.
bench-baseline:
	$(GO) run ./cmd/benchbaseline -out BENCH_baseline.json
