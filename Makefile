GO ?= go
SMOKEDIR ?= .smoke

.PHONY: ci vet build test race fuzz chaos bench bench-baseline bench-matrix profile profile-smoke skip-guard footprint-guard cas-battery net-chaos smoke

# ci is the tier-1 gate: everything must stay green, including the race
# detector over the worker pool, the observability counters, the
# crash/chaos robustness walk, the flight-recorder regression check on
# the example project, the critical-path profiler end-to-end check, the
# skip-rate guard (a fast stateful history whose measured skip rate must
# clear the floor), the footprint guard (honest builds must produce
# zero missed invalidations), the shared-cache battery (two clients
# over one CAS must match the stateless oracle at every commit), and the
# network-adversity battery (every client↔server exchange failed every
# way must still produce oracle-identical builds).
ci: vet build test race chaos smoke profile-smoke skip-guard footprint-guard cas-battery net-chaos

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 10m ./...

# race exercises the parallel build engine (including the obs counters
# registry and tracer under concurrent workers), the daemon's drain path,
# and the workload differential suite under the race detector.
race:
	$(GO) test -race -timeout 15m ./internal/buildsys/... ./internal/obs/... ./internal/workload ./internal/footprint ./internal/cas ./cmd/minibuild

# fuzz runs the fingerprint stability/sensitivity fuzzer for a short burst
# beyond its committed corpus.
fuzz:
	$(GO) test -fuzz FuzzFingerprintStability -fuzztime 30s ./internal/fingerprint

# chaos is the robustness gate (docs/ROBUSTNESS.md): the fault-injection
# walks over every state/history I/O call (under the race detector, since
# faults land on concurrent worker paths), the execution-fault walk — pass
# panics, a nondeterministic pass caught by the soundness sentinel,
# cancellation mid-build, and the daemon's SIGTERM drain — plus fuzz bursts
# on the two attacker-grade parsers: the state decoder and the IR
# fingerprinter.
chaos:
	$(GO) test -race -timeout 15m ./internal/vfs/...
	$(GO) test -race -timeout 15m -run 'TestChaos|TestSaveSyncs' ./internal/state ./internal/history ./internal/buildsys
	$(GO) test -race -timeout 15m -run 'TestPanic|TestSentinel|TestCancelled|TestAudited|TestWarnf' ./internal/buildsys
	$(GO) test -race -timeout 15m -run 'TestServeSIGTERMDrain|TestServePollSkipsOverlap' ./cmd/minibuild
	$(GO) test -fuzz FuzzStateDecode -fuzztime 30s ./internal/state
	$(GO) test -fuzz FuzzFootprintDecode -fuzztime 30s ./internal/footprint
	$(GO) test -fuzz FuzzFingerprintStability -fuzztime 30s ./internal/fingerprint
	$(GO) test -fuzz FuzzCASBlobDecode -fuzztime 20s ./internal/cas
	$(GO) test -fuzz FuzzCASObjectDecode -fuzztime 20s ./internal/cas
	$(GO) test -fuzz FuzzCASWire -fuzztime 20s ./internal/cas

# bench-baseline regenerates the committed performance baseline.
bench-baseline:
	$(GO) run ./cmd/benchbaseline -out BENCH_baseline.json

# bench records this PR's measurement alongside the seed baseline,
# including the decision-provenance counters, the soundness sentinel's
# overhead (unaudited p=0 vs sampled p=0.05 on the same histories), the
# dependency-footprint tracing overhead — including the 200+ unit megarepo
# row — held to a budget, the shared-cache two-client scenario held to a
# cross-client hit-rate floor, and the degraded-network row (a fully
# partitioned backend: the breaker must trip and the build fall back to
# local compiles at bounded cost).
bench:
	$(GO) run ./cmd/benchbaseline -audit 0.05 -footprint -max-footprint-overhead 50 \
		-cas -min-cas-hit-rate 50 -out BENCH_pr10.json

# bench-matrix regenerates the committed multi-core latency matrix
# (docs/PERFORMANCE.md): workers × profile p50/p99 incremental latency,
# skip rate, fingerprint memo effectiveness, allocs/build, and the
# old-vs-new fingerprint and state-layout comparisons.
bench-matrix:
	$(GO) run ./cmd/benchbaseline -matrix -workers 1,4,16 -repeats 5 -min-skip-rate 20 -out BENCH_pr6.json

# profile writes pprof CPU and heap profiles of a matrix run for hot-path
# work (inspect with `go tool pprof cpu.pprof`).
profile:
	$(GO) run ./cmd/benchbaseline -matrix -profiles 1 -workers 4 -out /dev/null \
		-cpuprofile cpu.pprof -memprofile mem.pprof

# profile-smoke is the critical-path profiler's end-to-end check: cold
# build, edit, incremental rebuild, then `minibuild profile -json` on the
# recorded history — the output must be valid JSON with a non-empty
# critical path (python3 parses and asserts both).
profile-smoke:
	rm -rf $(SMOKEDIR)-profile
	mkdir -p $(SMOKEDIR)-profile/proj
	cp examples/project/*.mc $(SMOKEDIR)-profile/proj/
	$(GO) build -o $(SMOKEDIR)-profile/minibuild ./cmd/minibuild
	$(SMOKEDIR)-profile/minibuild -dir $(SMOKEDIR)-profile/proj -mode stateful
	printf '\n// profile-smoke edit\n' >> $(SMOKEDIR)-profile/proj/math.mc
	$(SMOKEDIR)-profile/minibuild -dir $(SMOKEDIR)-profile/proj -mode stateful
	$(SMOKEDIR)-profile/minibuild profile -dir $(SMOKEDIR)-profile/proj
	$(SMOKEDIR)-profile/minibuild profile -dir $(SMOKEDIR)-profile/proj -json \
		| python3 -c 'import json,sys; d=json.load(sys.stdin); assert d["critical_path"], "empty critical path"; assert d["critical_total_ns"] >= d["longest_unit_ns"] > 0, "critical path below longest unit"'
	rm -rf $(SMOKEDIR)-profile

# skip-guard is the CI tripwire against regressions that silently destroy
# the stateful win: a fast single-profile matrix whose measured skip rate
# must clear the floor or the target exits non-zero.
skip-guard:
	$(GO) run ./cmd/benchbaseline -matrix -profiles 1 -workers 1 -commits 6 -repeats 1 \
		-min-skip-rate 20 -out /dev/null

# footprint-guard is the always-correct tripwire: honest suite builds with
# footprint tracing on must cross-check every cached unit and report zero
# missed invalidations (docs/ROBUSTNESS.md).
footprint-guard:
	$(GO) test -timeout 10m -run TestFootprintGuard -count=1 ./internal/footprint

# cas-battery is the shared cache's correctness gate (docs/ARCHITECTURE.md):
# the two-client differential battery (cold client B must match the
# stateless oracle at every commit with zero local compiles), the poisoned
# store walk, the 16-builder coalescing fleet under the race detector, and
# the chaos fault walk over every CAS I/O point.
cas-battery:
	$(GO) test -race -timeout 15m -count=1 ./internal/cas

# net-chaos is the network-adversity gate (docs/ROBUSTNESS.md): the
# partition battery (every recorded client↔server exchange × every fault
# kind must still yield oracle-identical builds within the deadline
# budgets), the breaker lifecycle and retry-taxonomy proofs, hedged
# fetches, crash-restart recovery, and the daemon's slow-loris / body-limit
# / drain-wakes-leases defenses — all under the race detector.
net-chaos:
	$(GO) test -race -timeout 15m -count=1 \
		-run 'TestPartitionBattery|TestBreaker|TestHTTPCAS|TestFaultTransport|TestServeRestart|TestRecoverTorn|TestExpireStale|TestDrainLeases' \
		./internal/cas
	$(GO) test -race -timeout 15m -count=1 \
		-run 'TestServeSlowLoris|TestServeCASBodyLimit|TestServeDrainWakes' ./cmd/minibuild

# smoke is the flight-recorder end-to-end check: cold build, comment-only
# edit, incremental rebuild, then gate on the recorded history — regress
# exits 2 unless the rebuild actually skipped dormant passes, and explain
# must render the edited unit's decision table.
smoke:
	rm -rf $(SMOKEDIR)
	mkdir -p $(SMOKEDIR)/proj
	cp examples/project/*.mc $(SMOKEDIR)/proj/
	$(GO) build -o $(SMOKEDIR)/minibuild ./cmd/minibuild
	$(SMOKEDIR)/minibuild -dir $(SMOKEDIR)/proj -mode stateful
	printf '\n// smoke edit\n' >> $(SMOKEDIR)/proj/math.mc
	$(SMOKEDIR)/minibuild -dir $(SMOKEDIR)/proj -mode stateful
	$(SMOKEDIR)/minibuild regress -dir $(SMOKEDIR)/proj -min-skip-rate 10
	$(SMOKEDIR)/minibuild explain -dir $(SMOKEDIR)/proj math.mc
	rm -rf $(SMOKEDIR)
