GO ?= go

.PHONY: ci vet build test race bench-baseline

# ci is the tier-1 gate: everything must stay green.
ci: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race exercises the parallel build engine and the workload differential
# suite under the race detector.
race:
	$(GO) test -race ./internal/buildsys ./internal/workload

# bench-baseline regenerates the committed performance baseline.
bench-baseline:
	$(GO) run ./cmd/benchbaseline -out BENCH_baseline.json
