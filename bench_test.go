// Benchmark harness entry points: one testing.B per table and figure of
// the reproduced evaluation (see DESIGN.md §5 and EXPERIMENTS.md), plus
// micro-benchmarks for the stateful machinery itself.
//
// The table/figure benchmarks execute the corresponding experiment once per
// b.N over a reduced suite so `go test -bench=.` stays fast; the full-suite
// numbers in EXPERIMENTS.md come from `go run ./cmd/experiments`.
package statefulcc_test

import (
	"bytes"
	"fmt"
	"testing"

	"statefulcc"
	"statefulcc/internal/bench"
	"statefulcc/internal/compiler"
	"statefulcc/internal/core"
	"statefulcc/internal/fingerprint"
	"statefulcc/internal/state"
	"statefulcc/internal/vm"
	"statefulcc/internal/workload"
)

func benchSuite() []workload.Profile { return workload.StandardSuite()[:3] }

func benchConfig() bench.Config { return bench.Config{Commits: 8} }

func reportTable(b *testing.B, tab *bench.Table, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	if testing.Verbose() {
		b.Log("\n" + tab.String())
	}
}

// BenchmarkTable1Characteristics regenerates Table 1 (project shapes).
func BenchmarkTable1Characteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.Table1Characteristics(benchSuite())
		reportTable(b, tab, err)
	}
}

// BenchmarkFigure1DormantFraction regenerates the motivation figure.
func BenchmarkFigure1DormantFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.Figure1DormantFraction(benchSuite(), benchConfig())
		reportTable(b, tab, err)
	}
}

// BenchmarkFigure2DormancyPersistence regenerates the persistence figure.
func BenchmarkFigure2DormancyPersistence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.Figure2DormancyPersistence(benchSuite(), benchConfig())
		reportTable(b, tab, err)
	}
}

// BenchmarkTable2EndToEnd regenerates the headline end-to-end comparison
// and reports the mean speedup as a custom metric.
func BenchmarkTable2EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.Table2EndToEnd(benchSuite(), benchConfig())
		reportTable(b, tab, err)
		if err == nil && len(tab.Rows) > 0 {
			var v float64
			mean := tab.Rows[len(tab.Rows)-1][3]
			if _, err := sscan(mean, &v); err == nil {
				b.ReportMetric(v, "mean-speedup-%")
			}
		}
	}
}

// BenchmarkFigure3PerFileCDF regenerates the per-file speedup distribution.
func BenchmarkFigure3PerFileCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.Figure3PerFileCDF(benchSuite(), benchConfig())
		reportTable(b, tab, err)
	}
}

// BenchmarkFigure4EditSize regenerates the edit-size sensitivity sweep.
func BenchmarkFigure4EditSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.Figure4EditSize(benchSuite()[1], bench.Config{Commits: 5})
		reportTable(b, tab, err)
	}
}

// BenchmarkTable3StateOverhead regenerates the state-size table.
func BenchmarkTable3StateOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.Table3StateOverhead(benchSuite(), benchConfig())
		reportTable(b, tab, err)
	}
}

// BenchmarkTable4Correctness regenerates the output-equivalence table.
func BenchmarkTable4Correctness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.Table4Correctness(benchSuite()[:2], bench.Config{Commits: 5})
		reportTable(b, tab, err)
	}
}

// BenchmarkFigure5PerPassSavings regenerates the per-pass skipping profile.
func BenchmarkFigure5PerPassSavings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.Figure5PerPassSavings(benchSuite(), benchConfig())
		reportTable(b, tab, err)
	}
}

// BenchmarkTable5VsFullCache regenerates the full-IR-cache comparison.
func BenchmarkTable5VsFullCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.Table5VsFullCache(benchSuite(), benchConfig())
		reportTable(b, tab, err)
	}
}

// BenchmarkFigure6Ablation regenerates the skip-policy ablation.
func BenchmarkFigure6Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.Figure6Ablation(benchSuite()[1], bench.Config{Commits: 5})
		reportTable(b, tab, err)
	}
}

// BenchmarkFigure7Parallelism regenerates the parallel-build extension.
func BenchmarkFigure7Parallelism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.Figure7Parallelism(benchSuite()[0], bench.Config{Commits: 3})
		reportTable(b, tab, err)
	}
}

// BenchmarkTable6PipelineLength regenerates the pipeline-length extension.
func BenchmarkTable6PipelineLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.Table6PipelineLength(benchSuite()[0], bench.Config{Commits: 3})
		reportTable(b, tab, err)
	}
}

// --- micro-benchmarks of the stateful machinery -----------------------------

// benchModule compiles one generated unit to IR for hashing benches.
func benchUnit(b *testing.B) (string, []byte) {
	b.Helper()
	snap := workload.Generate(benchSuite()[1])
	unit := snap.Units()[0]
	return unit, snap[unit]
}

// BenchmarkFingerprintFunction measures the hot-path hash.
func BenchmarkFingerprintFunction(b *testing.B) {
	unit, src := benchUnit(b)
	m, err := compiler.Frontend(unit, src)
	if err != nil {
		b.Fatal(err)
	}
	f := m.Funcs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fingerprint.Function(f)
	}
}

// BenchmarkCompileStateless measures a full single-unit compile.
func BenchmarkCompileStateless(b *testing.B) {
	unit, src := benchUnit(b)
	c, err := statefulcc.NewCompiler(statefulcc.CompilerOptions{Mode: statefulcc.Stateless})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.CompileUnit(unit, src, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileStatefulWarm measures the same compile with warm
// dormancy records — the per-file win the end-to-end number dilutes.
func BenchmarkCompileStatefulWarm(b *testing.B) {
	unit, src := benchUnit(b)
	c, err := statefulcc.NewCompiler(statefulcc.CompilerOptions{Mode: statefulcc.Stateful})
	if err != nil {
		b.Fatal(err)
	}
	var st *core.UnitState
	res, err := c.CompileUnit(unit, src, st)
	if err != nil {
		b.Fatal(err)
	}
	st = res.State
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.CompileUnit(unit, src, st)
		if err != nil {
			b.Fatal(err)
		}
		st = res.State
	}
}

// BenchmarkStateEncodeDecode measures state-store serialization.
func BenchmarkStateEncodeDecode(b *testing.B) {
	unit, src := benchUnit(b)
	c, err := statefulcc.NewCompiler(statefulcc.CompilerOptions{Mode: statefulcc.Stateful})
	if err != nil {
		b.Fatal(err)
	}
	res, err := c.CompileUnit(unit, src, nil)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := state.Encode(&buf, res.State); err != nil {
			b.Fatal(err)
		}
		if _, err := state.Decode(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// BenchmarkVMExecution measures the execution substrate.
func BenchmarkVMExecution(b *testing.B) {
	prog, err := statefulcc.CompileAndLink(map[string][]byte{"main.mc": []byte(`
func fib(n int) int {
    if n < 2 { return n; }
    return fib(n - 1) + fib(n - 2);
}
func main() int { return fib(18); }`)})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.Run(prog, vm.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func sscan(s string, v *float64) (int, error) {
	t := s
	if len(t) > 0 && t[len(t)-1] == '%' {
		t = t[:len(t)-1]
	}
	return fmt.Sscan(t, v)
}
