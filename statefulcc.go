// Package statefulcc is a from-scratch reproduction of "Enabling
// Fine-Grained Incremental Builds by Making Compiler Stateful" (CGO 2024):
// an optimizing compiler for the MiniC language whose pass manager persists
// per-function pass-dormancy records and uses them to skip dormant passes
// in incremental compilations, plus the build system, virtual machine,
// workload generator, and benchmark harness around it.
//
// This package is the public facade; it re-exports the pieces a downstream
// user needs:
//
//	// One-shot compilation and execution.
//	prog, err := statefulcc.CompileAndLink(map[string][]byte{"main.mc": src})
//	out, exit, err := statefulcc.RunProgram(prog)
//
//	// An incremental build session with the stateful compiler.
//	b, _ := statefulcc.NewBuilder(statefulcc.BuildOptions{Mode: statefulcc.Stateful})
//	report, _ := b.Build(snapshot)   // cold
//	report, _ = b.Build(edited)      // incremental: dormant passes skipped
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced evaluation.
package statefulcc

import (
	"statefulcc/internal/buildsys"
	"statefulcc/internal/codegen"
	"statefulcc/internal/compiler"
	"statefulcc/internal/core"
	"statefulcc/internal/passes"
	"statefulcc/internal/project"
	"statefulcc/internal/vm"
	"statefulcc/internal/workload"
)

// Mode selects the compilation policy.
type Mode = compiler.Mode

// Compilation policies.
const (
	// Stateless is the conventional compiler (the paper's baseline).
	Stateless = compiler.ModeStateless
	// Stateful is the paper's contribution: fingerprint-guarded
	// dormant-pass skipping.
	Stateful = compiler.ModeStateful
	// Predictive skips on dormancy records without the fingerprint guard
	// (ablation; unsound without verification).
	Predictive = compiler.ModePredictive
	// FullCache is a rustc/Zapcc-style whole-function IR cache comparator.
	FullCache = compiler.ModeFullCache
)

// Snapshot is a project source tree: unit name → contents.
type Snapshot = project.Snapshot

// Builder runs incremental builds, retaining object and compiler state
// between Build calls.
type Builder = buildsys.Builder

// BuildOptions configures a Builder.
type BuildOptions = buildsys.Options

// BuildReport summarizes one build.
type BuildReport = buildsys.Report

// Program is a linked executable for the bundled VM.
type Program = codegen.Program

// UnitState is one unit's persistent dormancy records.
type UnitState = core.UnitState

// Compiler compiles single units under a fixed policy.
type Compiler = compiler.Compiler

// CompilerOptions configures a Compiler.
type CompilerOptions = compiler.Options

// PipelineStats aggregates pass-manager statistics for one compilation.
type PipelineStats = core.Stats

// Profile describes a synthetic benchmark project.
type Profile = workload.Profile

// NewBuilder creates an incremental builder.
func NewBuilder(opts BuildOptions) (*Builder, error) {
	return buildsys.NewBuilder(opts)
}

// NewCompiler creates a single-unit compiler.
func NewCompiler(opts CompilerOptions) (*Compiler, error) {
	return compiler.New(opts)
}

// StandardPipeline returns the default -O2-style pass pipeline.
func StandardPipeline() []string {
	return append([]string(nil), passes.StandardPipeline...)
}

// QuickPipeline returns the -O1-style pipeline.
func QuickPipeline() []string {
	return append([]string(nil), passes.QuickPipeline...)
}

// CompileAndLink builds all units stateless with the standard pipeline and
// links them — the simplest end-to-end entry point.
func CompileAndLink(units map[string][]byte) (*Program, error) {
	b, err := NewBuilder(BuildOptions{Mode: Stateless})
	if err != nil {
		return nil, err
	}
	snap := make(Snapshot, len(units))
	for name, src := range units {
		snap[name] = src
	}
	rep, err := b.Build(snap)
	if err != nil {
		return nil, err
	}
	return rep.Program, nil
}

// RunProgram executes a linked program and returns its printed output and
// main's return value.
func RunProgram(p *Program) (string, int64, error) {
	out, res, err := vm.RunCapture(p, vm.Config{})
	if err != nil {
		return out, 0, err
	}
	return out, res.ExitValue, nil
}

// LoadProject reads every *.mc file under dir into a Snapshot.
func LoadProject(dir string) (Snapshot, error) {
	return project.LoadDir(dir)
}

// WriteProject materializes a Snapshot under dir.
func WriteProject(dir string, snap Snapshot) error {
	return project.WriteDir(dir, snap)
}

// GenerateProject builds a deterministic synthetic project.
func GenerateProject(p Profile) Snapshot {
	return workload.Generate(p)
}

// StandardSuite returns the benchmark project profiles used by the
// reproduced evaluation.
func StandardSuite() []Profile {
	return workload.StandardSuite()
}

// SimulateCommits applies n deterministic developer commits to a snapshot,
// returning the successive trees.
func SimulateCommits(base Snapshot, seed int64, n int) []Snapshot {
	h := workload.GenerateHistory(base, seed, n, workload.DefaultCommitOptions())
	return h.Commits
}
