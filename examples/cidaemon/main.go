// Cidaemon models the CI/CD use case from the paper's abstract: a
// long-lived verification daemon that receives a stream of commits, builds
// each one incrementally with the stateful compiler, runs the project's
// program as a smoke test, and keeps per-unit dormancy state *and* golden
// outputs across jobs. It reports the queue-drain time against a stateless
// worker processing the same queue.
//
//	go run ./examples/cidaemon
//	go run ./examples/cidaemon -queue 25
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"statefulcc"
)

type job struct {
	id   int
	snap statefulcc.Snapshot
}

type worker struct {
	name    string
	builder *statefulcc.Builder
	total   time.Duration
	passed  int
	failed  int
}

func newWorker(name string, mode statefulcc.Mode) *worker {
	b, err := statefulcc.NewBuilder(statefulcc.BuildOptions{Mode: mode})
	if err != nil {
		log.Fatal(err)
	}
	return &worker{name: name, builder: b}
}

// process builds and smoke-tests one job, returning the program output.
func (w *worker) process(j job) string {
	start := time.Now()
	rep, err := w.builder.Build(j.snap)
	if err != nil {
		log.Fatalf("%s: job %d: %v", w.name, j.id, err)
	}
	out, _, err := statefulcc.RunProgram(rep.Program)
	w.total += time.Since(start)
	if err != nil {
		w.failed++
		return ""
	}
	w.passed++
	return out
}

func main() {
	queueLen := flag.Int("queue", 15, "number of commits in the CI queue")
	flag.Parse()

	profile := statefulcc.Profile{
		Name: "ci-project", Seed: 7,
		Files: 20, FuncsPerFileMin: 4, FuncsPerFileMax: 8,
		StmtsPerFuncMin: 4, StmtsPerFuncMax: 10,
		GlobalsPerFile: 3, CrossFileCallFrac: 0.4, PrivateFrac: 0.4,
	}
	base := statefulcc.GenerateProject(profile)
	commits := statefulcc.SimulateCommits(base, 1234, *queueLen)

	queue := []job{{id: 0, snap: base}}
	for i, snap := range commits {
		queue = append(queue, job{id: i + 1, snap: snap})
	}
	fmt.Printf("CI queue: %d jobs over a %d-file project (%d lines)\n\n",
		len(queue), len(base), base.Lines())

	stateless := newWorker("stateless-worker", statefulcc.Stateless)
	stateful := newWorker("stateful-worker", statefulcc.Stateful)

	for _, j := range queue {
		o1 := stateless.process(j)
		o2 := stateful.process(j)
		status := "ok"
		if o1 != o2 {
			status = "OUTPUT MISMATCH"
		}
		fmt.Printf("job %2d: verified (%s)\n", j.id, status)
		if o1 != o2 {
			log.Fatal("stateful worker produced different program behaviour")
		}
	}

	fmt.Printf("\nqueue drained:\n")
	for _, w := range []*worker{stateless, stateful} {
		fmt.Printf("  %-17s %2d passed, %d failed, total build+test %.1fms\n",
			w.name, w.passed, w.failed, float64(w.total.Nanoseconds())/1e6)
	}
	saved := stateless.total - stateful.total
	fmt.Printf("\nthe stateful worker drained the same queue %.1fms (%.1f%%) faster —\n"+
		"the 'faster verification steps' the paper's abstract promises for CI/CD\n",
		float64(saved.Nanoseconds())/1e6,
		100*float64(saved)/float64(stateless.total))
}
