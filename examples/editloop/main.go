// Editloop simulates the developer inner loop the paper's abstract opens
// with: a project is generated, then repeatedly edited and rebuilt, with a
// stateless and a stateful builder racing on the same commits. The output
// is the per-commit build time of each, the passes skipped, and the
// cumulative time the stateful compiler saved.
//
//	go run ./examples/editloop
//	go run ./examples/editloop -commits 30 -files 24
package main

import (
	"flag"
	"fmt"
	"log"

	"statefulcc"
)

func main() {
	commits := flag.Int("commits", 12, "number of simulated commits")
	files := flag.Int("files", 16, "project size in files")
	flag.Parse()

	profile := statefulcc.Profile{
		Name: "editloop", Seed: 4242,
		Files: *files, FuncsPerFileMin: 4, FuncsPerFileMax: 9,
		StmtsPerFuncMin: 4, StmtsPerFuncMax: 10,
		GlobalsPerFile: 3, CrossFileCallFrac: 0.35, PrivateFrac: 0.4,
	}
	base := statefulcc.GenerateProject(profile)
	history := statefulcc.SimulateCommits(base, 99, *commits)
	fmt.Printf("project: %d files, %d lines\n\n", len(base), base.Lines())

	stateless, err := statefulcc.NewBuilder(statefulcc.BuildOptions{Mode: statefulcc.Stateless})
	if err != nil {
		log.Fatal(err)
	}
	stateful, err := statefulcc.NewBuilder(statefulcc.BuildOptions{Mode: statefulcc.Stateful})
	if err != nil {
		log.Fatal(err)
	}

	build := func(b *statefulcc.Builder, snap statefulcc.Snapshot) *statefulcc.BuildReport {
		rep, err := b.Build(snap)
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	// Cold builds.
	cold1 := build(stateless, base)
	cold2 := build(stateful, base)
	fmt.Printf("cold build: stateless %.1fms, stateful %.1fms (recording overhead %.1f%%)\n\n",
		float64(cold1.TotalNS)/1e6, float64(cold2.TotalNS)/1e6,
		100*(float64(cold2.TotalNS)/float64(cold1.TotalNS)-1))

	fmt.Printf("%-8s %-6s %12s %12s %9s %8s\n", "commit", "files", "stateless ms", "stateful ms", "speedup", "skipped")
	var sumSL, sumSF int64
	for i, snap := range history {
		r1 := build(stateless, snap)
		r2 := build(stateful, snap)
		sumSL += r1.TotalNS
		sumSF += r2.TotalNS
		_, _, skipped := r2.Stats().Totals()
		fmt.Printf("%-8d %-6d %12.2f %12.2f %8.1f%% %8d\n",
			i+1, r2.UnitsCompiled,
			float64(r1.TotalNS)/1e6, float64(r2.TotalNS)/1e6,
			100*(float64(r1.TotalNS)/float64(r2.TotalNS)-1), skipped)

		// Both must produce identical program behaviour.
		o1, e1, err := statefulcc.RunProgram(r1.Program)
		if err != nil {
			log.Fatal(err)
		}
		o2, e2, err := statefulcc.RunProgram(r2.Program)
		if err != nil {
			log.Fatal(err)
		}
		if o1 != o2 || e1 != e2 {
			log.Fatalf("commit %d: behaviour diverged!", i+1)
		}
	}
	fmt.Printf("\nend-to-end: stateless %.1fms, stateful %.1fms → %.2f%% faster incremental builds\n",
		float64(sumSL)/1e6, float64(sumSF)/1e6, 100*(float64(sumSL)/float64(sumSF)-1))
	fmt.Printf("every build's program output was identical under both compilers\n")
}
