// Quickstart: compile a two-file MiniC program, run it on the bundled VM,
// then rebuild it with the stateful compiler to watch dormant passes being
// skipped.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"statefulcc"
)

const mathUnit = `
// math.mc — a tiny library unit.
const SCALE = 100;

func clamp(x int, lo int, hi int) int {
    if x < lo { return lo; }
    if x > hi { return hi; }
    return x;
}

func lerp(a int, b int, t int) int {
    // t in [0, SCALE]
    return a + (b - a) * t / SCALE;
}
`

const mainUnit = `
// main.mc — the program entry point.
extern func clamp(x int, lo int, hi int) int;
extern func lerp(a int, b int, t int) int;

func main() int {
    print("clamped", clamp(150, 0, 100), clamp(-3, 0, 100), clamp(42, 0, 100));
    for var t int = 0; t <= 100; t += 25 {
        print("lerp", t, lerp(0, 80, t));
    }
    assert(lerp(0, 80, 100) == 80, "lerp endpoint");
    return clamp(7, 0, 5);
}
`

func main() {
	units := statefulcc.Snapshot{
		"math.mc": []byte(mathUnit),
		"main.mc": []byte(mainUnit),
	}

	// --- 1. One-shot compile + run --------------------------------------
	prog, err := statefulcc.CompileAndLink(map[string][]byte(units))
	if err != nil {
		log.Fatal(err)
	}
	out, exit, err := statefulcc.RunProgram(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("program output:\n" + out)
	fmt.Printf("exit value: %d\n\n", exit)

	// --- 2. The same build, stateful ------------------------------------
	builder, err := statefulcc.NewBuilder(statefulcc.BuildOptions{Mode: statefulcc.Stateful})
	if err != nil {
		log.Fatal(err)
	}

	rep1, err := builder.Build(units)
	if err != nil {
		log.Fatal(err)
	}
	runs1, dormant1, _ := rep1.Stats().Totals()
	fmt.Printf("cold build:    %d pass runs, %d of them dormant\n", runs1, dormant1)

	// Simulate the developer touching main.mc (whitespace-invisible edit:
	// change a constant) and rebuilding.
	edited := units.Clone()
	edited["main.mc"] = []byte(mainUnit + "\n// comment only\n")
	rep2, err := builder.Build(edited)
	if err != nil {
		log.Fatal(err)
	}
	runs2, _, skipped2 := rep2.Stats().Totals()
	fmt.Printf("incremental:   %d units recompiled, %d pass runs, %d passes skipped via dormancy records\n",
		rep2.UnitsCompiled, runs2, skipped2)
	fmt.Printf("state footprint: %d bytes\n", rep2.StateBytes)
}
