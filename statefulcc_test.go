package statefulcc_test

// Public-API tests: everything a downstream user does through the root
// package must work without touching internal/ directly.

import (
	"strings"
	"testing"

	"statefulcc"
)

func TestCompileAndLinkAndRun(t *testing.T) {
	prog, err := statefulcc.CompileAndLink(map[string][]byte{
		"main.mc": []byte(`func main() int { print("hi", 1 + 2); return 7; }`),
	})
	if err != nil {
		t.Fatal(err)
	}
	out, exit, err := statefulcc.RunProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	if out != "hi 3\n" || exit != 7 {
		t.Errorf("out=%q exit=%d", out, exit)
	}
}

func TestPublicBuilderFlow(t *testing.T) {
	const helper = `
func helper(n int) int {
    var s int = 0;
    for var i int = 0; i < n; i++ { s += i; }
    return s;
}
`
	snap := statefulcc.Snapshot{
		"main.mc": []byte(helper + `func main() int { return helper(3) - 2; }`),
	}
	b, err := statefulcc.NewBuilder(statefulcc.BuildOptions{Mode: statefulcc.Stateful})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := b.Build(snap)
	if err != nil {
		t.Fatal(err)
	}
	if r1.UnitsCompiled != 1 {
		t.Errorf("compiled = %d", r1.UnitsCompiled)
	}
	// Edit main only: helper's dormant records must produce skips.
	edited := snap.Clone()
	edited["main.mc"] = []byte(helper + `func main() int { return helper(3) - 1; }`)
	r2, err := b.Build(edited)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, skipped := r2.Stats().Totals(); skipped == 0 {
		t.Error("no skips through the public API")
	}
	_, exit, err := statefulcc.RunProgram(r2.Program)
	if err != nil || exit != 2 {
		t.Errorf("exit=%d err=%v", exit, err)
	}
}

func TestPublicWorkloadRoundTrip(t *testing.T) {
	suite := statefulcc.StandardSuite()
	if len(suite) != 8 {
		t.Fatalf("suite size %d", len(suite))
	}
	snap := statefulcc.GenerateProject(suite[0])
	commits := statefulcc.SimulateCommits(snap, 5, 3)
	if len(commits) != 3 {
		t.Fatalf("commits = %d", len(commits))
	}
	dir := t.TempDir()
	if err := statefulcc.WriteProject(dir, snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := statefulcc.LoadProject(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(snap) {
		t.Errorf("project roundtrip lost units")
	}
}

func TestPublicPipelines(t *testing.T) {
	std := statefulcc.StandardPipeline()
	quick := statefulcc.QuickPipeline()
	if len(std) <= len(quick) {
		t.Error("standard pipeline should be longer than quick")
	}
	// The returned slices are copies: mutating them must not corrupt the
	// library's configuration.
	std[0] = "corrupted"
	if statefulcc.StandardPipeline()[0] == "corrupted" {
		t.Error("StandardPipeline returns shared state")
	}
}

func TestPublicModeNames(t *testing.T) {
	names := map[statefulcc.Mode]string{
		statefulcc.Stateless:  "stateless",
		statefulcc.Stateful:   "stateful",
		statefulcc.Predictive: "predictive",
		statefulcc.FullCache:  "fullcache",
	}
	for mode, want := range names {
		if got := mode.String(); got != want {
			t.Errorf("%v prints %q", mode, got)
		}
	}
}

func TestPublicCompilerErrors(t *testing.T) {
	_, err := statefulcc.CompileAndLink(map[string][]byte{
		"main.mc": []byte(`func main() { undefined_thing(); }`),
	})
	if err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Errorf("err = %v", err)
	}
}
